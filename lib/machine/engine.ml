open Mtj_core

exception Budget_exhausted

type listener = insns:int -> Annot.t -> unit

type t = {
  cfg : Config.t;
  predictor : Predictor.t;
  dcache : Dcache.t;
  counters : Counters.t;
  mutable phase : Phase.t;
  mutable phase_stack : Phase.t list;
  mutable listeners : listener array;
  mutable interp_width : float;
  mutable inv_width : float;  (* 1 / width(phase), kept in sync on phase
                                 changes so the per-instruction paths
                                 multiply instead of divide *)
  mutable insns : int;
  mutable cycles : float;
  mispredict_penalty : float;
  miss_penalty : float;
}

let create ?(config = Config.default) () =
  {
    cfg = config;
    predictor = Predictor.create ();
    dcache = Dcache.create ();
    counters = Counters.create ();
    phase = Phase.Interpreter;
    phase_stack = [];
    listeners = [||];
    interp_width = 2.0;
    inv_width = 1.0 /. 2.0;
    insns = 0;
    cycles = 0.0;
    mispredict_penalty = 14.0;
    miss_penalty = 18.0;
  }

(* Issue widths for code styles that are properties of the framework
   rather than of the hosted VM.  JIT trace code is dense straight-line
   code; the blackhole interpreter is pointer-chasing and serial (the
   paper's Table IV measures it at the lowest IPC of all phases); GC is
   a tight, cache-warm loop. *)
let width t = function
  | Phase.Interpreter | Phase.Tracing | Phase.Native -> t.interp_width
  | Phase.Jit -> 1.95
  | Phase.Jit_call -> 1.75
  | Phase.Gc_minor | Phase.Gc_major -> 2.0
  | Phase.Blackhole -> 1.05

let refresh_width t = t.inv_width <- 1.0 /. width t t.phase

let set_interp_width t w =
  t.interp_width <- w;
  refresh_width t

let bump_insns t n =
  t.insns <- t.insns + n;
  if t.insns > t.cfg.Config.insn_budget then raise Budget_exhausted

let emit t cost =
  let n = Cost.total cost in
  if n > 0 then begin
    let cy = float_of_int n *. t.inv_width in
    t.cycles <- t.cycles +. cy;
    Counters.add_bundle t.counters t.phase cost ~cycles:cy;
    bump_insns t n
  end

let branch t ~site ~taken =
  let correct = Predictor.conditional t.predictor ~site ~taken in
  let cy =
    t.inv_width +. (if correct then 0.0 else t.mispredict_penalty)
  in
  t.cycles <- t.cycles +. cy;
  Counters.add_branch t.counters t.phase ~mispredicted:(not correct) ~cycles:cy;
  bump_insns t 1

let branch_indirect t ~site ~target =
  let correct = Predictor.indirect t.predictor ~site ~target in
  let cy =
    t.inv_width +. (if correct then 0.0 else t.mispredict_penalty)
  in
  t.cycles <- t.cycles +. cy;
  Counters.add_branch t.counters t.phase ~mispredicted:(not correct) ~cycles:cy;
  bump_insns t 1

let mem_access t ~addr ~write =
  let hit = Dcache.access t.dcache ~addr in
  let cost =
    if write then Cost.make ~store:1 () else Cost.make ~load:1 ()
  in
  let cy = t.inv_width in
  t.cycles <- t.cycles +. cy;
  Counters.add_bundle t.counters t.phase cost ~cycles:cy;
  if not hit then begin
    t.cycles <- t.cycles +. t.miss_penalty;
    Counters.add_cache_miss t.counters t.phase ~cycles:t.miss_penalty
  end;
  bump_insns t 1

let annot t a =
  let ls = t.listeners in
  for i = 0 to Array.length ls - 1 do
    (Array.unsafe_get ls i) ~insns:t.insns a
  done

let push_phase t p =
  annot t (Annot.Phase_push p);
  t.phase_stack <- t.phase :: t.phase_stack;
  t.phase <- p;
  refresh_width t

let pop_phase t =
  match t.phase_stack with
  | [] -> invalid_arg "Engine.pop_phase: empty phase stack"
  | p :: rest ->
      let popped = t.phase in
      t.phase <- p;
      t.phase_stack <- rest;
      refresh_width t;
      (* delivered after restoring, so listeners reading [current_phase]
         see the parent phase while the annotation names the popped one *)
      annot t (Annot.Phase_pop popped)

let current_phase t = t.phase

let in_phase t p f =
  push_phase t p;
  match f () with
  | v ->
      pop_phase t;
      v
  | exception e ->
      pop_phase t;
      raise e

(* prepend, like the cons it replaces, so dispatch order is unchanged;
   attachment is rare, delivery is the hot path *)
let add_listener t l = t.listeners <- Array.append [| l |] t.listeners
let total_insns t = t.insns
let total_cycles t = t.cycles
let counters t = t.counters
let config t = t.cfg
let predictor t = t.predictor
let dcache t = t.dcache
