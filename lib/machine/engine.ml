open Mtj_core

exception Budget_exhausted

type listener = insns:int -> Annot.t -> unit

type t = {
  cfg : Config.t;
  predictor : Predictor.t;
  dcache : Dcache.t;
  counters : Counters.t;
  mutable phase : Phase.t;
  mutable phase_idx : int;  (* Phase.index phase, cached for the
                               counter fast path *)
  mutable phase_stack : Phase.t list;
  mutable listeners : listener array;  (* first n_listeners slots live;
                                          newest listener last *)
  mutable n_listeners : int;
  mutable interp_width : float;
  mutable inv_width : float;  (* 1 / width(phase), kept in sync on phase
                                 changes so the per-instruction paths
                                 multiply instead of divide *)
  mutable insns : int;
  cycles : float array;  (* one cell: float-array stores stay unboxed,
                            unlike a mutable float field in this mixed
                            record which would allocate per charge *)
  cxfer : float array;  (* [Counters.cycles_xfer counters], cached so the
                           charge paths hand cycle deltas to the counter
                           layer through an unboxed float-array store
                           instead of a boxed float argument *)
  mispredict_penalty : float;
  miss_penalty : float;
}

let create ?(config = Config.default) () =
  let counters = Counters.create () in
  {
    cfg = config;
    predictor = Predictor.create ();
    dcache = Dcache.create ();
    counters;
    phase = Phase.Interpreter;
    phase_idx = Phase.index Phase.Interpreter;
    phase_stack = [];
    listeners = [||];
    n_listeners = 0;
    interp_width = 2.0;
    inv_width = 1.0 /. 2.0;
    insns = 0;
    cycles = Array.make 1 0.0;
    cxfer = Counters.cycles_xfer counters;
    mispredict_penalty = 14.0;
    miss_penalty = 18.0;
  }

(* Issue widths for code styles that are properties of the framework
   rather than of the hosted VM.  JIT trace code is dense straight-line
   code; the blackhole interpreter is pointer-chasing and serial (the
   paper's Table IV measures it at the lowest IPC of all phases); GC is
   a tight, cache-warm loop. *)
let width t = function
  | Phase.Interpreter | Phase.Tracing | Phase.Native -> t.interp_width
  | Phase.Jit -> 1.95
  | Phase.Jit_call -> 1.75
  | Phase.Gc_minor | Phase.Gc_major -> 2.0
  | Phase.Blackhole -> 1.05

let refresh_phase t =
  t.inv_width <- 1.0 /. width t t.phase;
  t.phase_idx <- Phase.index t.phase

let set_interp_width t w =
  t.interp_width <- w;
  refresh_phase t

let[@inline] bump_insns t n =
  t.insns <- t.insns + n;
  if t.insns > t.cfg.Config.insn_budget then raise Budget_exhausted

let[@inline] bump_cycles t cy =
  Array.unsafe_set t.cycles 0 (Array.unsafe_get t.cycles 0 +. cy)

let[@inline] emit t cost =
  let n = Cost.total cost in
  if n > 0 then begin
    let cy = float_of_int n *. t.inv_width in
    bump_cycles t cy;
    Array.unsafe_set t.cxfer 0 cy;
    Counters.add_bundle_idx_x t.counters t.phase_idx ~n ~loads:cost.Cost.load
      ~stores:cost.Cost.store;
    bump_insns t n
  end

let emit_static t costs ~lo ~hi =
  if lo < 0 || hi > Array.length costs || lo > hi then
    invalid_arg "Engine.emit_static";
  for i = lo to hi - 1 do
    emit t (Array.unsafe_get costs i)
  done

let[@inline] charge_branch t ~correct =
  let cy =
    t.inv_width +. (if correct then 0.0 else t.mispredict_penalty)
  in
  bump_cycles t cy;
  Array.unsafe_set t.cxfer 0 cy;
  Counters.add_branch_idx_x t.counters t.phase_idx
    ~mispredicted:(not correct);
  bump_insns t 1

let branch t ~site ~taken =
  charge_branch t ~correct:(Predictor.conditional t.predictor ~site ~taken)

let branch_indirect t ~site ~target =
  charge_branch t ~correct:(Predictor.indirect t.predictor ~site ~target)

(* hoisted out of [mem_access]: one load / one store, shared by every
   simulated heap access instead of being rebuilt per call *)
let load_cost = Cost.make ~load:1 ()
let store_cost = Cost.make ~store:1 ()

let mem_access t ~addr ~write =
  let hit = Dcache.access t.dcache ~addr in
  let cost = if write then store_cost else load_cost in
  let cy = t.inv_width in
  bump_cycles t cy;
  Array.unsafe_set t.cxfer 0 cy;
  Counters.add_bundle_idx_x t.counters t.phase_idx ~n:1 ~loads:cost.Cost.load
    ~stores:cost.Cost.store;
  if not hit then begin
    bump_cycles t t.miss_penalty;
    Array.unsafe_set t.cxfer 0 t.miss_penalty;
    Counters.add_cache_miss_idx_x t.counters t.phase_idx
  end;
  bump_insns t 1

let annot t a =
  let ls = t.listeners in
  (* newest-first, matching the prepend order the old append-built array
     delivered in *)
  for i = t.n_listeners - 1 downto 0 do
    (Array.unsafe_get ls i) ~insns:t.insns a
  done

let push_phase t p =
  annot t (Annot.Phase_push p);
  t.phase_stack <- t.phase :: t.phase_stack;
  t.phase <- p;
  refresh_phase t

let pop_phase t =
  match t.phase_stack with
  | [] -> invalid_arg "Engine.pop_phase: empty phase stack"
  | p :: rest ->
      let popped = t.phase in
      t.phase <- p;
      t.phase_stack <- rest;
      refresh_phase t;
      (* delivered after restoring, so listeners reading [current_phase]
         see the parent phase while the annotation names the popped one *)
      annot t (Annot.Phase_pop popped)

let current_phase t = t.phase

let in_phase t p f =
  push_phase t p;
  match f () with
  | v ->
      pop_phase t;
      v
  | exception e ->
      pop_phase t;
      raise e

(* attachment is rare, delivery is the hot path: grow a capacity-doubled
   buffer instead of rebuilding the array per attach *)
let add_listener t l =
  let n = t.n_listeners in
  let cap = Array.length t.listeners in
  if n = cap then begin
    let grown = Array.make (if cap = 0 then 4 else 2 * cap) l in
    Array.blit t.listeners 0 grown 0 n;
    t.listeners <- grown
  end;
  t.listeners.(n) <- l;
  t.n_listeners <- n + 1

let total_insns t = t.insns
let total_cycles t = t.cycles.(0)
let counters t = t.counters
let charge_flushes t = Counters.charge_flushes t.counters
let fast_path_bundles t = Counters.fast_path_bundles t.counters
let config t = t.cfg
let predictor t = t.predictor
let dcache t = t.dcache
