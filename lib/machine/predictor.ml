type t = {
  table : Bytes.t;          (* 2-bit counters, one byte each *)
  table_mask : int;
  local_hist : int array;   (* per-site local history (PAg first level) *)
  local_mask : int;
  btb : int array;          (* last target per entry; -1 = empty *)
  btb_mask : int;
  mutable history : int;
  history_mask : int;
}

let create ?(history_bits = 12) ?(table_bits = 14) ?(btb_bits = 11) () =
  let table_size = 1 lsl table_bits in
  {
    table = Bytes.make table_size '\002' (* weakly taken *);
    table_mask = table_size - 1;
    local_hist = Array.make 1024 0;
    local_mask = 1023;
    btb = Array.make (1 lsl btb_bits) (-1);
    btb_mask = (1 lsl btb_bits) - 1;
    history = 0;
    history_mask = (1 lsl history_bits) - 1;
  }

(* Cheap integer hash to spread site ids across the tables. *)
let[@inline] hash_site site = (site * 2654435761) land max_int

(* Two-level local-history prediction (PAg): each branch site keeps its
   own outcome history, which indexes the shared pattern table.  This
   captures per-branch periodic behaviour (loop trip counts, modulo
   patterns) the way modern TAGE-class predictors do. *)
let[@inline] conditional t ~site ~taken =
  let h = hash_site site in
  let lidx = h land t.local_mask in
  let local = t.local_hist.(lidx) in
  let idx = (h lxor (local * 7919)) land t.table_mask in
  let counter = Char.code (Bytes.unsafe_get t.table idx) in
  let predicted_taken = counter >= 2 in
  let correct = predicted_taken = taken in
  let counter' =
    if taken then min 3 (counter + 1) else max 0 (counter - 1)
  in
  Bytes.unsafe_set t.table idx (Char.chr counter');
  t.local_hist.(lidx) <- ((local lsl 1) lor Bool.to_int taken) land 1023;
  t.history <- ((t.history lsl 1) lor Bool.to_int taken) land t.history_mask;
  correct

let[@inline] indirect t ~site ~target =
  (* path-based indexing: modern indirect predictors (ITTAGE-like) use
     global history, which lets them track the periodic dispatch-target
     sequences of interpreter loops (cf. Rohou et al., cited in the
     paper: interpreter dispatch predicts far better than folklore) *)
  let idx =
    (hash_site site lxor ((t.history land 127) * 31)) land t.btb_mask
  in
  let predicted = t.btb.(idx) in
  let correct = predicted = target in
  t.btb.(idx) <- target;
  (* indirect branches shift several target bits into the history so a
     periodic dispatch sequence gives each position a distinct context *)
  t.history <- ((t.history lsl 3) lor (target land 7)) land t.history_mask;
  correct

let reset t =
  Bytes.fill t.table 0 (Bytes.length t.table) '\002';
  Array.fill t.local_hist 0 (Array.length t.local_hist) 0;
  Array.fill t.btb 0 (Array.length t.btb) (-1);
  t.history <- 0
