(** Attribution of execution time to AOT-compiled runtime functions
    called from JIT-compiled meta-traces (framework-level
    characterization, Sec. V-C / Table III).

    Listens to [Aot_enter]/[Aot_exit] annotations.  Following the paper,
    time spent in functions called {e from} an AOT function is counted
    against the outermost entry point, and only calls made from
    JIT-compiled code (the [Jit_call] phase) are attributed — AOT
    functions also run under the plain interpreter, where they are just
    part of interpretation. *)

type t

val attach : Mtj_machine.Engine.t -> t

val insns_of : t -> int -> int
(** Instructions attributed to AOT function [id] (entry-point inclusive). *)

val calls_of : t -> int -> int
(** Number of outermost calls into AOT function [id] from JIT code. *)

val top : t -> n:int -> (int * int) list
(** The [n] most expensive functions as [(fn_id, insns)], descending. *)

val total_attributed : t -> int
