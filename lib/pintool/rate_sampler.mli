(** Bytecode-execution-rate sampler (interpreter-level characterization,
    Sec. V-D / Figure 5).

    Counts [Dispatch_tick] annotations — one per dispatch-loop iteration
    in the interpreter, one per bytecode-level merge point in JIT-compiled
    code — and records the cumulative count at fixed instruction-count
    boundaries.  Comparing two VMs' curves at equal instruction counts
    gives the warmup break-even points, precisely and without perturbing
    the measured VM (the paper's key argument for the methodology). *)

type t

val attach : ?window:int -> Mtj_machine.Engine.t -> t
(** [window] is the sampling interval in instructions (default from the
    engine's configuration). *)

val finalize : t -> unit
(** Record the final partial window. *)

val ticks : t -> int
(** Total dispatch ticks observed ("work" completed). *)

val samples : t -> (int * int) array
(** [(insns, cumulative_ticks)] at each window boundary, ascending. *)

val ticks_at : t -> int -> int
(** [ticks_at t insns]: cumulative ticks at the given instruction count
    (linear interpolation between samples; saturates at the ends). *)

val break_even : t -> against:t -> int option
(** [break_even fast ~against:slow] finds the first instruction count at
    which [fast]'s cumulative work catches up with [against]'s — the
    paper's break-even point (Fig. 5 dashed/dotted lines).  [None] if it
    never catches up within the recorded run. *)
