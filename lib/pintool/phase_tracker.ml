open Mtj_core

type t = {
  engine : Mtj_machine.Engine.t;
  bucket_insns : int;
  totals : int array;
  mutable buckets : int array list;  (* newest first; one per-phase array each *)
  mutable cur_bucket : int array;
  mutable bucket_base : int;         (* insns at start of current bucket *)
  mutable last_insns : int;
  mutable cur_phase : Phase.t;
  mutable finalized : bool;
}

(* Attribute [last_insns .. now) to the current phase, spilling across
   bucket boundaries. *)
let account t now =
  let rec go last =
    if last < now then begin
      let bucket_end = t.bucket_base + t.bucket_insns in
      let upto = min now bucket_end in
      let i = Phase.index t.cur_phase in
      t.cur_bucket.(i) <- t.cur_bucket.(i) + (upto - last);
      t.totals.(i) <- t.totals.(i) + (upto - last);
      if upto = bucket_end && upto < now then begin
        t.buckets <- t.cur_bucket :: t.buckets;
        t.cur_bucket <- Array.make Phase.count 0;
        t.bucket_base <- bucket_end
      end;
      go upto
    end
  in
  go t.last_insns;
  t.last_insns <- now

let attach ?(bucket_insns = 50_000) engine =
  let t =
    {
      engine;
      bucket_insns;
      totals = Array.make Phase.count 0;
      buckets = [];
      cur_bucket = Array.make Phase.count 0;
      bucket_base = 0;
      last_insns = 0;
      cur_phase = Phase.Interpreter;
      finalized = false;
    }
  in
  Mtj_machine.Engine.add_listener engine (fun ~insns annot ->
      match annot with
      | Annot.Phase_push p ->
          account t insns;
          t.cur_phase <- p
      | Annot.Phase_pop _ ->
          account t insns;
          t.cur_phase <- Mtj_machine.Engine.current_phase engine
          (* the engine has already restored the parent phase when the
             pop annotation is delivered *)
      | Annot.Dispatch_tick | Annot.Ir_exec _ | Annot.Aot_enter _
      | Annot.Aot_exit _ | Annot.Trace_enter _ | Annot.Trace_exit _
      | Annot.Trace_compile _ | Annot.Trace_abort _
      | Annot.Guard_fail _ | Annot.App_marker _ ->
          ());
  t

let finalize t =
  if not t.finalized then begin
    account t (Mtj_machine.Engine.total_insns t.engine);
    t.buckets <- t.cur_bucket :: t.buckets;
    t.finalized <- true
  end

let phase_insns t p = t.totals.(Phase.index p)
let total_insns t = Array.fold_left ( + ) 0 t.totals

let fraction t p =
  let total = total_insns t in
  if total = 0 then 0.0
  else float_of_int (phase_insns t p) /. float_of_int total

let timeline t =
  let buckets = Array.of_list (List.rev t.buckets) in
  Array.map
    (fun bucket ->
      let total = Array.fold_left ( + ) 0 bucket in
      if total = 0 then [||]
      else
        Phase.all
        |> List.filter_map (fun p ->
               let n = bucket.(Phase.index p) in
               if n = 0 then None
               else Some (p, float_of_int n /. float_of_int total))
        |> Array.of_list)
    buckets

let bucket_insns t = t.bucket_insns
