open Mtj_core

type t = {
  insns : (int, int) Hashtbl.t;
  calls : (int, int) Hashtbl.t;
  mutable stack : (int * int) list;  (* (fn_id, insns at entry) *)
}

let bump tbl key n =
  let cur = Option.value ~default:0 (Hashtbl.find_opt tbl key) in
  Hashtbl.replace tbl key (cur + n)

let attach engine =
  let t = { insns = Hashtbl.create 64; calls = Hashtbl.create 64; stack = [] } in
  Mtj_machine.Engine.add_listener engine (fun ~insns annot ->
      match annot with
      | Annot.Aot_enter id ->
          (* only track entries made from JIT-compiled code: the engine is
             already in Jit_call phase when the annotation fires *)
          let in_jit_call =
            Phase.equal
              (Mtj_machine.Engine.current_phase engine)
              Phase.Jit_call
          in
          if in_jit_call || t.stack <> [] then begin
            if t.stack = [] then bump t.calls id 1;
            t.stack <- (id, insns) :: t.stack
          end
      | Annot.Aot_exit id -> begin
          match t.stack with
          | (top_id, entry) :: rest when top_id = id ->
              t.stack <- rest;
              (* inclusive attribution: only the outermost frame books
                 the interval *)
              if rest = [] then bump t.insns id (insns - entry)
          | _ -> ()
        end
      | Annot.Phase_push _ | Annot.Phase_pop _ | Annot.Dispatch_tick
      | Annot.Ir_exec _ | Annot.Trace_enter _ | Annot.Trace_exit _
      | Annot.Trace_compile _ | Annot.Trace_abort _
      | Annot.Guard_fail _ | Annot.App_marker _ ->
          ());
  t

let insns_of t id = Option.value ~default:0 (Hashtbl.find_opt t.insns id)
let calls_of t id = Option.value ~default:0 (Hashtbl.find_opt t.calls id)

let top t ~n =
  Hashtbl.fold (fun id insns acc -> (id, insns) :: acc) t.insns []
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)
  |> List.filteri (fun i _ -> i < n)

let total_attributed t = Hashtbl.fold (fun _ n acc -> acc + n) t.insns 0
