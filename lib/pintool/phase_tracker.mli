(** Phase timeline tracker (the custom PinTool of Sec. IV/V-B).

    Listens to [Phase_push]/[Phase_pop] annotations in the instruction
    stream and builds (a) total instructions per phase — Figures 2 and 4 —
    and (b) a bucketed timeline of phase occupancy over the run —
    Figure 3.  Totals here are measured {e from the annotation stream},
    independently of {!Mtj_machine.Counters}; tests cross-check the two. *)

type t

val attach : ?bucket_insns:int -> Mtj_machine.Engine.t -> t
(** Register on the engine.  [bucket_insns] is the timeline resolution
    (default 50_000 instructions per bucket). *)

val finalize : t -> unit
(** Account the tail segment between the last phase event and the current
    instruction count.  Call once, after the run completes. *)

val phase_insns : t -> Mtj_core.Phase.t -> int
(** Instructions observed under the phase (after {!finalize}). *)

val total_insns : t -> int

val fraction : t -> Mtj_core.Phase.t -> float
(** Share of total instructions spent in the phase. *)

val timeline : t -> (Mtj_core.Phase.t * float) array array
(** One entry per bucket; each entry gives per-phase occupancy fractions
    for that instruction window (entries for phases with zero occupancy
    are omitted). *)

val bucket_insns : t -> int
