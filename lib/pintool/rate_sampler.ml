open Mtj_core

type t = {
  window : int;
  mutable ticks : int;
  mutable next_mark : int;
  mutable rev_samples : (int * int) list;
  engine : Mtj_machine.Engine.t;
  mutable finalized : bool;
}

let attach ?window engine =
  let window =
    match window with
    | Some w -> w
    | None -> (Mtj_machine.Engine.config engine).Config.sample_window
  in
  let t =
    {
      window;
      ticks = 0;
      next_mark = window;
      rev_samples = [];
      engine;
      finalized = false;
    }
  in
  (* this listener runs on every annotation (the deliver-hot path of
     Engine.add_listener); [insns] is the engine's exact per-bundle
     total — bundle charging is staged in Counters, never in the
     instruction count — so sample marks land on precise boundaries *)
  Mtj_machine.Engine.add_listener engine (fun ~insns annot ->
      match annot with
      | Annot.Dispatch_tick ->
          t.ticks <- t.ticks + 1;
          while insns >= t.next_mark do
            t.rev_samples <- (t.next_mark, t.ticks) :: t.rev_samples;
            t.next_mark <- t.next_mark + t.window
          done
      | _ -> ());
  t

let finalize t =
  if not t.finalized then begin
    let insns = Mtj_machine.Engine.total_insns t.engine in
    t.rev_samples <- (insns, t.ticks) :: t.rev_samples;
    t.finalized <- true
  end

let ticks t = t.ticks
let samples t = Array.of_list (List.rev t.rev_samples)

let ticks_at t insns =
  let s = samples t in
  let n = Array.length s in
  if n = 0 then 0
  else if insns <= fst s.(0) then
    (* interpolate from origin *)
    let i0, k0 = s.(0) in
    if i0 = 0 then k0 else insns * k0 / i0
  else if insns >= fst s.(n - 1) then snd s.(n - 1)
  else begin
    (* binary search for the bracketing pair *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if fst s.(mid) <= insns then lo := mid else hi := mid
    done;
    let i0, k0 = s.(!lo) and i1, k1 = s.(!hi) in
    if i1 = i0 then k0 else k0 + ((insns - i0) * (k1 - k0) / (i1 - i0))
  end

let break_even t ~against =
  let s = samples t in
  let found = ref None in
  (try
     Array.iter
       (fun (insns, k) ->
         if k >= ticks_at against insns && k > 0 then begin
           found := Some insns;
           raise Exit
         end)
       s
   with Exit -> ());
  !found
