(** pylite language tests: every supported construct is executed under
    (a) the plain interpreter and (b) an aggressive JIT configuration
    (tiny hot-loop threshold, so even small test loops compile and
    deoptimize); outputs must match exactly. *)

module V = Mtj_pylite.Vm
module C = Mtj_core.Config

(* a config that JITs almost immediately, to push tiny programs through
   the tracing/compile/deopt machinery *)
let eager_jit =
  {
    C.default with
    C.jit_threshold = 7;
    bridge_threshold = 3;
    insn_budget = 50_000_000;
  }

let run_with config src =
  let outcome, vm = V.run ~config src in
  match outcome with
  | Mtj_rjit.Driver.Completed _ -> V.output vm
  | Mtj_rjit.Driver.Budget_exceeded -> Alcotest.fail "budget exceeded"
  | Mtj_rjit.Driver.Runtime_error e -> Alcotest.failf "runtime error: %s" e

let check_program name ?expect src () =
  let interp = run_with { C.no_jit with C.insn_budget = 50_000_000 } src in
  let jit = run_with eager_jit src in
  Alcotest.(check string) (name ^ ": interp vs jit") interp jit;
  match expect with
  | Some e -> Alcotest.(check string) (name ^ ": expected") e interp
  | None -> ()

let t name ?expect src =
  Alcotest.test_case name `Quick (check_program name ?expect src)

let missing_key_reported () =
  let config = { C.no_jit with C.insn_budget = 10_000_000 } in
  let outcome, _ = V.run ~config "d = {}\nprint(d[\"nope\"])\n" in
  match outcome with
  | Mtj_rjit.Driver.Runtime_error _ -> ()
  | _ -> Alcotest.fail "expected a KeyError-style runtime error"

let suite =
  [
    t "arithmetic" ~expect:"13\n-3\n40\n2\n1\n2.5\n1024\n"
      {|
a = 5
b = 8
print(a + b)
print(a - b)
print(a * b)
print(b // 3)
print(b % 7)
print(a / 2)
print(2 ** 10)
|};
    t "unary and precedence" ~expect:"-5\n11\n17\nTrue\n"
      {|
x = 5
print(-x)
print(1 + 2 * 5)
print((1 + 2) * 5 + 2)
print(not False)
|};
    t "bitwise" ~expect:"4\n14\n10\n20\n2\n"
      {|
print(12 & 6)
print(12 | 6)
print(12 ^ 6)
print(5 << 2)
print(5 >> 1)
|};
    t "comparisons" ~expect:"True\nFalse\nTrue\nTrue\nFalse\nTrue\n"
      {|
print(1 < 2)
print(2 < 1)
print(2 <= 2)
print(3 > 2)
print(3 != 3)
print(1 < 2 < 3)
|};
    t "booleans and short circuit" ~expect:"True\nFalse\n7\n0\n"
      {|
print(True and True)
print(True and False)
print(False or 7)
print(False or 0)
|};
    t "while loop" ~expect:"45\n"
      {|
s = 0
i = 0
while i < 10:
    s = s + i
    i = i + 1
print(s)
|};
    t "for range" ~expect:"285\n"
      {|
def main():
    s = 0
    for i in range(10):
        s = s + i * i
    return s
print(main())
|};
    t "range with start stop step" ~expect:"12\n9\n"
      {|
def f():
    s = 0
    for i in range(2, 7, 2):
        s = s + i
    return s
def g():
    s = 0
    for i in range(5, 0, -2):
        s = s + i
    return s
print(f())
print(g())
|};
    t "break continue" ~expect:"11\n9\n"
      {|
def f():
    s = 0
    for i in range(100):
        if i == 4:
            continue
        if i > 5:
            break
        s = s + i
    return s
def g():
    s = 0
    i = 0
    while True:
        i = i + 1
        if i % 2 == 0:
            continue
        s = s + i
        if s >= 9:
            break
    return s
print(f())
print(g())
|};
    t "nested loops" ~expect:"2025\n"
      {|
def f():
    s = 0
    for i in range(10):
        for j in range(10):
            s = s + i * j
    return s
print(f())
|};
    t "lists" ~expect:"3\n2\n[1, 2, 3, 99]\n99\n[1, 5, 3]\n"
      {|
l = [1, 2, 3]
print(len(l))
print(l[1])
l.append(99)
print(l)
print(l.pop())
l[1] = 5
print(l)
|};
    t "list negative index" ~expect:"3\n1\n"
      {|
l = [1, 2, 3]
print(l[-1])
print(l[-3])
|};
    t "slices" ~expect:"[2, 3]\n[1, 2]\n[3, 4]\nbc\n"
      {|
l = [1, 2, 3, 4]
print(l[1:3])
print(l[:2])
print(l[2:])
s = "abcd"
print(s[1:3])
|};
    t "dicts" ~expect:"2\n10\nTrue\nFalse\n-1\n1\n"
      {|
d = {"a": 10, "b": 20}
print(len(d))
print(d["a"])
print("a" in d)
print("z" in d)
print(d.get("z", -1))
del d["a"]
print(len(d))
|};
    t "dict iteration order" ~expect:"x 1\ny 2\nz 3\n"
      {|
d = {}
d["x"] = 1
d["y"] = 2
d["z"] = 3
for k in d:
    print(k, d[k])
|};
    t "tuples" ~expect:"2\n1\n3\n(1, 2)\n"
      {|
t = (1, 2, 3)
print(t[1])
a, b, c = t
print(a)
print(c)
print((1, 2))
|};
    t "tuple swap" ~expect:"2 1\n"
      {|
a = 1
b = 2
a, b = b, a
print(a, b)
|};
    t "strings" ~expect:"5\nh\nHELLO\nhe-llo\n2\nTrue\n"
      {|
s = "hello"
print(len(s))
print(s[0])
print(s.upper())
print("he-llo")
print(s.find("l"))
print(s.startswith("he"))
|};
    t "string join split replace" ~expect:"a,b,c\n3\nxbc\n"
      {|
parts = ["a", "b", "c"]
print(",".join(parts))
print(len("a b c".split(" ")))
print("abc".replace("a", "x"))
|};
    t "string concat in loop" ~expect:"0123456789\n"
      {|
def f():
    s = ""
    for i in range(10):
        s = s + str(i)
    return s
print(f())
|};
    t "sets" ~expect:"3\nTrue\n2\n"
      {|
s = {1, 2, 3}
print(len(s))
a = {1, 2}
print(a.issubset(s))
s.remove(3)
print(len(s))
|};
    t "functions" ~expect:"7\n120\n"
      {|
def add(a, b):
    return a + b
def fact(n):
    if n <= 1:
        return 1
    return n * fact(n - 1)
print(add(3, 4))
print(fact(5))
|};
    t "functions as values" ~expect:"9\n16\n"
      {|
def sq(x):
    return x * x
def apply(f, x):
    return f(x)
print(apply(sq, 3))
print(apply(sq, 4))
|};
    t "classes" ~expect:"3\n7\n10\n"
      {|
class Counter:
    def __init__(self, start):
        self.n = start
    def bump(self, k):
        self.n = self.n + k
        return self.n
c = Counter(3)
print(c.n)
print(c.bump(4))
print(c.bump(3))
|};
    t "inheritance" ~expect:"generic\nwoof\nwoof\n"
      {|
class Animal:
    def speak(self):
        return "generic"
class Dog(Animal):
    def speak(self):
        return "woof"
a = Animal()
d = Dog()
print(a.speak())
print(d.speak())
class Puppy(Dog):
    pass
print(Puppy().speak())
|};
    t "super-style init chain" ~expect:"5 10\n"
      {|
class Base:
    def __init__(self, x):
        self.x = x
class Derived(Base):
    def __init__(self, x, y):
        Base.__init__(self, x)
        self.y = y
d = Derived(5, 10)
print(d.x, d.y)
|};
    t "methods as bound values" ~expect:"8\n"
      {|
class Adder:
    def __init__(self, k):
        self.k = k
    def add(self, x):
        return x + self.k
a = Adder(5)
m = a.add
print(m(3))
|};
    t "ternary and chained" ~expect:"small\nbig\n"
      {|
def f(x):
    return "small" if x < 10 else "big"
print(f(5))
print(f(50))
|};
    t "augmented assignment" ~expect:"15\n[1, 4]\n7\n"
      {|
x = 5
x += 10
print(x)
l = [1, 2]
l[1] += 2
print(l)
class P:
    def __init__(self):
        self.v = 3
p = P()
p.v += 4
print(p.v)
|};
    t "global statement" ~expect:"11\n"
      {|
counter = 0
def bump():
    global counter
    counter = counter + 11
bump()
print(counter)
|};
    t "builtins" ~expect:"5\n3\n9\n97\na\n3\n3.5\n42\n"
      {|
print(abs(-5))
print(min(3, 7))
print(max(9, 2))
print(ord("a"))
print(chr(97))
print(int(3.9))
print(float("3.5"))
print(int("42"))
|};
    t "sorted and hash" ~expect:"[1, 2, 3]\nTrue\n"
      {|
print(sorted([3, 1, 2]))
print(hash("x") == hash("x"))
|};
    t "math module" ~expect:"3.0\n1.0\n8.0\n"
      {|
print(math.sqrt(9.0))
print(math.floor(1.7))
print(math.pow(2.0, 3.0))
|};
    t "stringio" ~expect:"hello world\n"
      {|
b = StringIO()
b.write("hello")
b.write(" world")
print(b.getvalue())
|};
    t "for over list and dict and string" ~expect:"6\nab\n3\n"
      {|
s = 0
for x in [1, 2, 3]:
    s = s + x
print(s)
acc = ""
for ch in "ab":
    acc = acc + ch
print(acc)
d = {1: 10, 2: 20, 3: 30}
n = 0
for k in d:
    n = n + 1
print(n)
|};
    t "for tuple unpacking" ~expect:"1 2\n3 4\n"
      {|
pairs = [(1, 2), (3, 4)]
for a, b in pairs:
    print(a, b)
|};
    t "bignum integration" ~expect:"2432902008176640000\n265252859812191058636308480000000\n"
      {|
def fact(n):
    r = 1
    for i in range(2, n + 1):
        r = r * i
    return r
print(fact(20))
print(fact(30))
|};
    t "float formatting" ~expect:"2.5\n1.0\n0.5\n"
      {|
print(2.5)
print(1.0)
print(1 / 2)
|};
    t "deep data structures" ~expect:"6\n"
      {|
d = {"rows": [[1, 2], [3]], "tag": "x"}
s = 0
for row in d["rows"]:
    for v in row:
        s = s + v
print(s)
|};
    t "polymorphic hot loop (bridges)"
      {|
def f():
    s = 0
    for i in range(1000):
        if i % 3 == 0:
            s = s + i
        elif i % 3 == 1:
            s = s + i * 2
        else:
            s = s - i
    s = s + 500 * 1000
    return s
print(f())
|};
    t "virtualized allocation with rare escape"
      {|
def f():
    s = 0
    last = None
    for i in range(1000):
        p = (i, i * 2)
        if i == 999:
            last = p
        s = s + p[0] + p[1]
    return s + last[0] + last[1] - 3000 + 4
print(f() - 999 - 1998 + 996)
def g():
    total = 0
    for i in range(100):
        box = [i]
        if i % 2 == 0:
            total = total + box[0] * 2
        else:
            total = total + box[0]
    return total
print(g())
|};
    t "guard failure type switch"
      {|
def f():
    s = 0
    for i in range(100):
        if i < 50:
            x = i
        else:
            x = i * 1.0
        s = s + int(x)
    return s + 2600
print(f())
|};
    Alcotest.test_case "missing key reported" `Quick missing_key_reported;
  ]
