(** Unit tests for mtj_core: phases, costs, profiles, config. *)

open Mtj_core

let test_phase_index_roundtrip () =
  List.iter
    (fun p -> Alcotest.(check bool) "roundtrip" true (Phase.of_index (Phase.index p) = p))
    Phase.all

let test_phase_count () =
  Alcotest.(check int) "count" (List.length Phase.all) Phase.count

let test_phase_names_unique () =
  let names = List.map Phase.name Phase.all in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq String.compare names))

let test_phase_is_gc () =
  Alcotest.(check bool) "minor" true (Phase.is_gc Phase.Gc_minor);
  Alcotest.(check bool) "major" true (Phase.is_gc Phase.Gc_major);
  Alcotest.(check bool) "jit" false (Phase.is_gc Phase.Jit)

let test_cost_total () =
  let c = Cost.make ~alu:3 ~fpu:2 ~load:4 ~store:1 ~other:5 () in
  Alcotest.(check int) "total" 15 (Cost.total c)

let test_cost_add () =
  let a = Cost.make ~alu:1 ~load:2 () in
  let b = Cost.make ~alu:3 ~store:4 () in
  Alcotest.(check int) "sum total" 10 (Cost.total Cost.(a + b))

let test_cost_zero () =
  Alcotest.(check int) "zero" 0 (Cost.total Cost.zero)

let test_cost_scale_keeps_nonzero () =
  let c = Cost.make ~alu:1 ~load:1 () in
  let scaled = Cost.scale 0.1 c in
  Alcotest.(check bool) "alu stays >= 1" true (Cost.total scaled >= 2)

let test_cost_scale_doubles () =
  let c = Cost.make ~alu:10 ~load:6 ~store:4 () in
  Alcotest.(check int) "x2" 40 (Cost.total (Cost.scale 2.0 c))

let test_profiles_ordering () =
  (* CPython interprets cheaper than the RPython-translated interpreter *)
  let dispatch p = Cost.total p.Profile.dispatch in
  Alcotest.(check bool) "dispatch" true
    (dispatch Profile.cpython < dispatch Profile.rpython_interp);
  Alcotest.(check bool) "op_scale" true
    (Profile.cpython.Profile.op_scale < Profile.rpython_interp.Profile.op_scale);
  Alcotest.(check bool) "native cheapest" true
    (Profile.native.Profile.op_scale < Profile.racket_custom.Profile.op_scale)

let test_config_no_jit () =
  Alcotest.(check bool) "jit off" false Config.no_jit.Config.jit_enabled;
  Alcotest.(check bool) "jit on" true Config.default.Config.jit_enabled

let test_config_budget () =
  let c = Config.with_budget 123 Config.default in
  Alcotest.(check int) "budget" 123 c.Config.insn_budget

let test_config_two_tier () =
  Alcotest.(check bool) "default is single-tier optimizing" true
    (Config.default.Config.tier_policy = Config.Optimizing);
  Alcotest.(check bool) "two_tier is adaptive" true
    (Config.two_tier.Config.tier_policy = Config.Adaptive);
  Alcotest.(check bool) "baseline_tier is baseline" true
    (Config.baseline_tier.Config.tier_policy = Config.Baseline);
  Alcotest.(check bool) "jit stays enabled" true
    Config.two_tier.Config.jit_enabled;
  Alcotest.(check bool) "tier-2 comes after bridges can form" true
    (Config.two_tier.Config.tier2_threshold
    > Config.two_tier.Config.bridge_threshold);
  (* name <-> policy round-trip *)
  List.iter
    (fun p ->
      Alcotest.(check bool) "policy name round-trips" true
        (Config.tier_policy_of_string (Config.tier_policy_name p) = Some p))
    Config.all_tier_policies;
  Alcotest.(check bool) "unknown policy rejected" true
    (Config.tier_policy_of_string "warp-speed" = None)

let test_annot_to_string () =
  Alcotest.(check string) "tick" "dispatch_tick"
    (Annot.to_string Annot.Dispatch_tick);
  Alcotest.(check string) "push" "phase_push:jit"
    (Annot.to_string (Annot.Phase_push Phase.Jit))

let suite =
  [
    Alcotest.test_case "phase index roundtrip" `Quick test_phase_index_roundtrip;
    Alcotest.test_case "phase count" `Quick test_phase_count;
    Alcotest.test_case "phase names unique" `Quick test_phase_names_unique;
    Alcotest.test_case "phase is_gc" `Quick test_phase_is_gc;
    Alcotest.test_case "cost total" `Quick test_cost_total;
    Alcotest.test_case "cost add" `Quick test_cost_add;
    Alcotest.test_case "cost zero" `Quick test_cost_zero;
    Alcotest.test_case "cost scale keeps nonzero" `Quick test_cost_scale_keeps_nonzero;
    Alcotest.test_case "cost scale doubles" `Quick test_cost_scale_doubles;
    Alcotest.test_case "profile ordering" `Quick test_profiles_ordering;
    Alcotest.test_case "config no_jit" `Quick test_config_no_jit;
    Alcotest.test_case "config budget" `Quick test_config_budget;
    Alcotest.test_case "config two-tier" `Quick test_config_two_tier;
    Alcotest.test_case "annot to_string" `Quick test_annot_to_string;
  ]
