(* Golden-file driver for lib/harness/render.ml.

   Renders two small experiments over live (deterministic) simulated
   runs; dune diffs the output byte-for-byte against the committed
   .expected files, so any drift in table layout, bar/sparkline
   rendering, number formatting, or the simulation itself fails
   `dune runtest`.  After an intentional change, refresh with
   `dune promote`. *)

module R = Mtj_harness.Runner
module Rd = Mtj_harness.Render

let budget = 2_000_000
let benches = [ "nbody"; "richards" ]
let configs = [ R.Cpython; R.Pypy_nojit; R.Pypy_jit ]

let pairs =
  List.concat_map (fun b -> List.map (fun c -> (b, c)) configs) benches

(* experiment 1: the Table-I-style per-VM summary *)
let table () =
  R.prefetch ~jobs:2 ~budget pairs;
  Rd.heading "golden: per-VM cycle summary (2 M insn budget)";
  Rd.table
    ~header:[ "bench"; "vm"; "Mcycles"; "IPC"; "MPKI" ]
    ~rows:
      (List.map
         (fun (b, c) ->
           let r = R.run ~budget b c in
           [
             b;
             R.config_name c;
             Rd.f2 (R.mcycles r);
             Rd.f2 (R.ipc r);
             Rd.f1 (R.mpki r);
           ])
         pairs)

(* experiment 2: the Figure-2/5-style phase bars and warmup sparkline *)
let figures () =
  R.prefetch ~jobs:2 ~budget
    (List.map (fun b -> (b, R.Pypy_jit)) benches);
  Rd.heading "golden: phase mix and warmup (pypy)";
  List.iter
    (fun b ->
      let r = R.run ~budget b R.Pypy_jit in
      let parts =
        List.map (fun p -> (p, R.phase_fraction r p)) Mtj_core.Phase.all
      in
      Rd.pr "%-10s |%s|\n" b (Rd.stacked_bar ~width:40 parts))
    benches;
  Rd.pr "%s\n" Rd.phase_legend;
  Rd.subheading "dispatch-tick rate over time (nbody)";
  let r = R.run ~budget "nbody" R.Pypy_jit in
  let values = Array.map (fun (_, v) -> float_of_int v) r.R.samples in
  Rd.pr "|%s|\n" (Rd.sparkline values);
  Rd.pr "ticks total: %d   simple_bar(jit frac): |%s|\n" r.R.ticks
    (Rd.simple_bar ~width:30 (R.phase_fraction r Mtj_core.Phase.Jit))

let () =
  match Sys.argv with
  | [| _; "table" |] -> table ()
  | [| _; "figures" |] -> figures ()
  | _ ->
      prerr_endline "usage: golden_render.exe (table|figures)";
      exit 2
