(* Golden-file driver for lib/harness/render.ml.

   Renders two small experiments over live (deterministic) simulated
   runs; dune diffs the output byte-for-byte against the committed
   .expected files, so any drift in table layout, bar/sparkline
   rendering, number formatting, or the simulation itself fails
   `dune runtest`.  After an intentional change, refresh with
   `dune promote`. *)

module R = Mtj_harness.Runner
module Rd = Mtj_harness.Render

let budget = 2_000_000
let benches = [ "nbody"; "richards" ]
let configs = [ R.Cpython; R.Pypy_nojit; R.Pypy_jit ]

let pairs =
  List.concat_map (fun b -> List.map (fun c -> (b, c)) configs) benches

(* experiment 1: the Table-I-style per-VM summary *)
let table () =
  R.prefetch ~jobs:2 ~budget pairs;
  Rd.heading "golden: per-VM cycle summary (2 M insn budget)";
  Rd.table
    ~header:[ "bench"; "vm"; "Mcycles"; "IPC"; "MPKI" ]
    ~rows:
      (List.map
         (fun (b, c) ->
           let r = R.run ~budget b c in
           [
             b;
             R.config_name c;
             Rd.f2 (R.mcycles r);
             Rd.f2 (R.ipc r);
             Rd.f1 (R.mpki r);
           ])
         pairs)

(* experiment 2: the Figure-2/5-style phase bars and warmup sparkline *)
let figures () =
  R.prefetch ~jobs:2 ~budget
    (List.map (fun b -> (b, R.Pypy_jit)) benches);
  Rd.heading "golden: phase mix and warmup (pypy)";
  List.iter
    (fun b ->
      let r = R.run ~budget b R.Pypy_jit in
      let parts =
        List.map (fun p -> (p, R.phase_fraction r p)) Mtj_core.Phase.all
      in
      Rd.pr "%-10s |%s|\n" b (Rd.stacked_bar ~width:40 parts))
    benches;
  Rd.pr "%s\n" Rd.phase_legend;
  Rd.subheading "dispatch-tick rate over time (nbody)";
  let r = R.run ~budget "nbody" R.Pypy_jit in
  let values = Array.map (fun (_, v) -> float_of_int v) r.R.samples in
  Rd.pr "|%s|\n" (Rd.sparkline values);
  Rd.pr "ticks total: %d   simple_bar(jit frac): |%s|\n" r.R.ticks
    (Rd.simple_bar ~width:30 (R.phase_fraction r Mtj_core.Phase.Jit))

(* experiment 3: the tier-policy extension — warmup latch, per-tier
   residency, and tier compile counts across the three policies *)
let tier_configs =
  [ ("optimizing", R.Pypy_jit); ("baseline", R.Pypy_baseline);
    ("adaptive", R.Pypy_tiered) ]

let tiers () =
  R.prefetch ~jobs:2 ~budget
    (List.concat_map
       (fun b -> List.map (fun (_, c) -> (b, c)) tier_configs)
       benches);
  Rd.heading "golden: tier policies (2 M insn budget)";
  Rd.table
    ~header:
      ("bench"
      :: List.concat_map
           (fun (n, _) -> [ n ^ " 1st (Ki)"; n ^ " t1/t2" ])
           tier_configs)
    ~rows:
      (List.map
         (fun b ->
           b
           :: List.concat_map
                (fun (_, c) ->
                  let r = R.run ~budget b c in
                  match r.R.jit with
                  | None -> [ "-"; "-" ]
                  | Some j ->
                      [
                        (if j.R.first_entry_insns < 0 then "never"
                         else
                           Rd.f1
                             (float_of_int j.R.first_entry_insns /. 1.0e3));
                        Printf.sprintf "%d/%d" j.R.tier1_compiles
                          j.R.tier2_compiles;
                      ])
                tier_configs)
         benches);
  Rd.subheading "adaptive tier residency";
  Rd.table
    ~header:
      [ "bench"; "t1 entries"; "t2 entries"; "t1 dyn-IR"; "t2 dyn-IR";
        "promoted"; "demoted" ]
    ~rows:
      (List.map
         (fun b ->
           let r = R.run ~budget b R.Pypy_tiered in
           match r.R.jit with
           | None -> [ b; "-"; "-"; "-"; "-"; "-"; "-" ]
           | Some j ->
               [
                 b;
                 string_of_int j.R.tier1_entries;
                 string_of_int j.R.tier2_entries;
                 string_of_int j.R.tier1_dynamic_ir;
                 string_of_int j.R.tier2_dynamic_ir;
                 string_of_int j.R.retiers;
                 string_of_int j.R.demotions;
               ])
         benches)

(* experiment 4: the mtj-metrics/8 document itself — built from a tiered
   run, validated (schema + tier invariants), round-tripped through the
   parser, and printed; any drift in the export format fails the diff *)
let metrics () =
  let module J = Mtj_obs.Json in
  let r = R.run ~budget "richards" R.Pypy_tiered in
  let doc =
    Mtj_obs.Metrics.document ~runs:[ Mtj_harness.Report.metrics_json r ] ()
  in
  (match Mtj_obs.Validate.metrics doc with
  | Ok n -> Rd.pr "validate: OK, %d run record(s)\n" n
  | Error e -> Rd.pr "validate: INVALID: %s\n" e);
  let printed = J.to_string ~indent:2 doc in
  (match J.parse printed with
  | Ok reparsed when J.to_string ~indent:2 reparsed = printed ->
      Rd.pr "round-trip: stable\n"
  | Ok _ -> Rd.pr "round-trip: UNSTABLE\n"
  | Error e -> Rd.pr "round-trip: PARSE ERROR: %s\n" e);
  print_string printed;
  print_newline ()

let () =
  match Sys.argv with
  | [| _; "table" |] -> table ()
  | [| _; "figures" |] -> figures ()
  | [| _; "tiers" |] -> tiers ()
  | [| _; "metrics" |] -> metrics ()
  | _ ->
      prerr_endline "usage: golden_render.exe (table|figures|tiers|metrics)";
      exit 2
