(** Differential tests for the serving harness: the simulated side of a
    serving session is byte-identical across shared-cache mode and job
    count (the shared cache may only change host wall time), the Zipf
    workload generator is exactly reproducible from its seed, and the
    nearest-rank percentile helper is exact.

    The workload includes richards — the bridge-heaviest program in the
    registry — so trace compilation, guard failure, bridge attachment
    and [Ir.invalidate_code]-driven recompilation all run on both the
    compiled-locally and imported-bundle paths. *)

module S = Mtj_harness.Serve
module B = Mtj_benchmarks.Registry
module Report = Mtj_harness.Report

(* --- percentile (exact nearest-rank) --- *)

let test_percentile () =
  let check = Alcotest.(check (float 1e-9)) in
  check "p50 of 4" 2.0 (Report.percentile [| 4.; 1.; 3.; 2. |] 50.0);
  check "p100 is max" 4.0 (Report.percentile [| 4.; 1.; 3.; 2. |] 100.0);
  check "p1 is min" 1.0 (Report.percentile [| 4.; 1.; 3.; 2. |] 1.0);
  check "singleton" 7.5 (Report.percentile [| 7.5 |] 99.0);
  (* nearest rank, no interpolation: p95 of 1..100 is the 95th smallest *)
  let xs = Array.init 100 (fun i -> float_of_int (i + 1)) in
  check "p95 of 1..100" 95.0 (Report.percentile xs 95.0);
  check "p99 of 1..100" 99.0 (Report.percentile xs 99.0);
  check "p50 of 1..100" 50.0 (Report.percentile xs 50.0);
  (* ceil semantics: p50 of 5 elements is the 3rd smallest *)
  check "p50 of 5" 3.0 (Report.percentile [| 5.; 4.; 3.; 2.; 1. |] 50.0);
  (match Report.percentile [||] 50.0 with
  | _ -> Alcotest.fail "empty sample set should raise"
  | exception Invalid_argument _ -> ());
  match Report.percentile [| 1.0 |] 0.0 with
  | _ -> Alcotest.fail "p=0 should raise"
  | exception Invalid_argument _ -> ()

(* --- workload generator --- *)

let test_zipf_stream_golden () =
  let reqs =
    S.gen_requests ~corpus:S.default_corpus ~requests:5000 ~zipf_s:1.1
      ~seed:42
  in
  Alcotest.(check int) "stream length" 5000 (Array.length reqs);
  (* regenerating from the same seed gives the same stream, element by
     element; a different seed diverges *)
  let again =
    S.gen_requests ~corpus:S.default_corpus ~requests:5000 ~zipf_s:1.1
      ~seed:42
  in
  Array.iteri
    (fun i r ->
      if r.S.req_bench <> again.(i).S.req_bench then
        Alcotest.failf "request %d differs across regenerations" i)
    reqs;
  let other =
    S.gen_requests ~corpus:S.default_corpus ~requests:5000 ~zipf_s:1.1
      ~seed:43
  in
  let same = ref true in
  Array.iteri
    (fun i r -> if r.S.req_bench <> other.(i).S.req_bench then same := false)
    reqs;
  Alcotest.(check bool) "different seed diverges" false !same;
  (* Zipf shape: rank 1 strictly more popular than rank 2, which beats
     the tail; every corpus entry appears in a long stream *)
  let count name =
    Array.fold_left
      (fun n r -> if r.S.req_bench = name then n + 1 else n)
      0 reqs
  in
  let rank1 = count "richards" and rank2 = count "nbody_modified" in
  Alcotest.(check bool) "rank 1 beats rank 2" true (rank1 > rank2);
  Alcotest.(check bool)
    "rank 1 dominates" true
    (rank1 > Array.length reqs / 4);
  List.iter
    (fun (_, name) ->
      Alcotest.(check bool) (name ^ " appears") true (count name > 0))
    S.default_corpus

(* --- serving differential: simulated state is mode- and jobs-invariant --- *)

(* a small mixed corpus with richards (bridge-heavy) up front *)
let corpus =
  [ (B.Py, "richards"); (B.Rk, "mandelbrot"); (B.Py, "telco") ]

(* the budget must let a COLD run compile its hot loop (richards first
   enters a trace around 870k simulated insns) — otherwise published
   profiles carry no hot sites and the seeding tests measure nothing *)
let run ?(profile_seed = false) ?(cache_capacity = 0) ?(tenant_quota = 0)
    ~jobs ~shared () =
  S.serve ~jobs ~budget:1_000_000 ~zipf_s:1.1 ~seed:7 ~shared ~profile_seed
    ~cache_capacity ~tenant_quota ~corpus ~requests:48 ()

let sim_view (s : S.summary) =
  Array.to_list
    (Array.map
       (fun (r : S.record) ->
         Printf.sprintf "%d %s/%s %s %s" r.S.r_id r.S.r_lang r.S.r_bench
           r.S.r_status r.S.r_digest)
       s.S.sv_records)

let out_view (s : S.summary) =
  Array.to_list
    (Array.map
       (fun (r : S.record) ->
         Printf.sprintf "%d %s/%s %s" r.S.r_id r.S.r_lang r.S.r_bench
           r.S.r_out_digest)
       s.S.sv_records)

(* full simulated digests, with profile seeding off: invariant across
   shared-cache mode, job count and eviction churn *)
let test_mode_and_jobs_invariance () =
  let base = run ~jobs:1 ~shared:false () in
  let view = sim_view base in
  List.iter
    (fun (jobs, shared, cache_capacity) ->
      let s = run ~jobs ~shared ~cache_capacity () in
      List.iter2
        (fun a b ->
          if a <> b then
            Alcotest.failf
              "request differs at jobs=%d shared=%b capacity=%d:\n  %s\n  %s"
              jobs shared cache_capacity a b)
        view (sim_view s))
    [ (1, true, 0); (3, true, 0); (3, false, 0); (3, true, 2) ]

(* program outputs, across EVERYTHING — seeding on or off, bounded or
   unbounded cache, any job count: seeding and eviction may move when
   the JIT kicks in, never what the tenant program computes *)
let test_output_digest_invariance () =
  let base = run ~jobs:1 ~shared:false () in
  let view = out_view base in
  List.iter
    (fun (jobs, shared, profile_seed, cache_capacity) ->
      let s = run ~jobs ~shared ~profile_seed ~cache_capacity () in
      List.iter2
        (fun a b ->
          if a <> b then
            Alcotest.failf
              "output differs at jobs=%d shared=%b seed=%b capacity=%d:\n\
              \  %s\n  %s"
              jobs shared profile_seed cache_capacity a b)
        view (out_view s))
    [
      (1, true, true, 0);
      (3, true, true, 0);
      (1, true, true, 2);
      (3, true, true, 2);
      (3, true, false, 2);
    ]

(* at jobs=1 the pool executes the stream in order, so a seeded session
   is fully deterministic: same session twice, byte-identical records —
   the seed-determinism golden the CI lane relies on *)
let test_seeded_determinism () =
  let a = run ~jobs:1 ~shared:true ~profile_seed:true () in
  let b = run ~jobs:1 ~shared:true ~profile_seed:true () in
  List.iter2
    (fun x y ->
      if x <> y then
        Alcotest.failf "seeded -j1 session not deterministic:\n  %s\n  %s" x y)
    (sim_view a) (sim_view b);
  Alcotest.(check int) "same seeded count" a.S.sv_seeded b.S.sv_seeded;
  Alcotest.(check bool) "some requests were seeded" true (a.S.sv_seeded > 0);
  (* and seeding actually differs from the unseeded session's simulated
     state (the JIT traces earlier), while outputs stay equal *)
  let u = run ~jobs:1 ~shared:true ~profile_seed:false () in
  Alcotest.(check bool)
    "seeded sim state differs from unseeded" true
    (sim_view a <> sim_view u);
  List.iter2
    (fun x y ->
      if x <> y then
        Alcotest.failf "seeded/unseeded outputs differ:\n  %s\n  %s" x y)
    (out_view a) (out_view u)

(* the point of the tentpole: seeded warm requests reach the JIT in
   measurably fewer simulated instructions than unseeded ones *)
let test_seeding_warmup_win () =
  let s = run ~jobs:1 ~shared:true ~profile_seed:true () in
  Alcotest.(check bool) "seeded requests exist" true (s.S.sv_seeded > 0);
  Alcotest.(check bool)
    "seeded mean first-entry > 0" true
    (s.S.sv_seeded_first_entry_mean > 0.0);
  Alcotest.(check bool)
    (Printf.sprintf "seeded first entry %.0f < unseeded %.0f"
       s.S.sv_seeded_first_entry_mean s.S.sv_unseeded_first_entry_mean)
    true
    (s.S.sv_seeded_first_entry_mean < s.S.sv_unseeded_first_entry_mean);
  (* per-bench, strictly: every seeded request that entered a trace did
     so no later than the cold request for the same program *)
  let cold_first = Hashtbl.create 8 in
  Array.iter
    (fun (r : S.record) ->
      if (not r.S.r_warm) && r.S.r_first_entry_insns >= 0 then
        Hashtbl.replace cold_first (r.S.r_lang, r.S.r_bench)
          r.S.r_first_entry_insns)
    s.S.sv_records;
  Array.iter
    (fun (r : S.record) ->
      if r.S.r_seeded && r.S.r_first_entry_insns >= 0 then
        match Hashtbl.find_opt cold_first (r.S.r_lang, r.S.r_bench) with
        | Some cold ->
            Alcotest.(check bool)
              (Printf.sprintf "%s seeded first entry %d < cold %d" r.S.r_bench
                 r.S.r_first_entry_insns cold)
              true
              (r.S.r_first_entry_insns < cold)
        | None -> ())
    s.S.sv_records;
  let c = s.S.sv_cache in
  Alcotest.(check bool)
    "profiles were attached" true
    (c.Mtj_rjit.Sharedcache.profile_publications > 0);
  Alcotest.(check int)
    "every seeded request is a seeded import" s.S.sv_seeded
    c.Mtj_rjit.Sharedcache.seeded_imports

(* warm requests really import from the shared cache, and the summary's
   accounting invariants hold on a live session *)
let test_shared_cache_accounting () =
  let s = run ~jobs:3 ~shared:true () in
  Alcotest.(check int) "every request warm or cold" 48 (s.S.sv_cold + s.S.sv_warm);
  let c = s.S.sv_cache in
  Alcotest.(check int)
    "one lookup per request" 48
    (c.Mtj_rjit.Sharedcache.shared_hits + c.Mtj_rjit.Sharedcache.local_hits
   + c.Mtj_rjit.Sharedcache.misses);
  Alcotest.(check int)
    "every hit is a warm request" s.S.sv_warm
    (c.Mtj_rjit.Sharedcache.shared_hits + c.Mtj_rjit.Sharedcache.local_hits);
  Alcotest.(check bool)
    "publications bounded by misses" true
    (c.Mtj_rjit.Sharedcache.publications <= c.Mtj_rjit.Sharedcache.misses);
  (* only 3 distinct (lang, program, config) keys exist *)
  Alcotest.(check bool)
    "at most one publication per key" true
    (c.Mtj_rjit.Sharedcache.publications <= 3);
  Alcotest.(check bool) "cache warmed up" true (s.S.sv_warm >= 40);
  (* per-request jitlog accounting: warm requests imported whole
     bundles, cold ones imported nothing *)
  Array.iter
    (fun (r : S.record) ->
      if r.S.r_warm then
        Alcotest.(check bool)
          "warm request counted shared code hits" true
          (r.S.r_shared_code_hits > 0)
      else
        Alcotest.(check int) "cold request has no shared hits" 0
          r.S.r_shared_code_hits)
    s.S.sv_records;
  (* the session with the cache off never touches it *)
  let off = run ~jobs:3 ~shared:false () in
  Alcotest.(check int) "off: all cold" 48 off.S.sv_cold;
  let oc = off.S.sv_cache in
  Alcotest.(check int) "off: no lookups" 0
    (oc.Mtj_rjit.Sharedcache.shared_hits + oc.Mtj_rjit.Sharedcache.local_hits
   + oc.Mtj_rjit.Sharedcache.misses + oc.Mtj_rjit.Sharedcache.publications)

(* a tiny-capacity session churns the cache and still serves every
   request; the bounded-cache accounting invariants hold live *)
let test_eviction_churn_accounting () =
  let s = run ~jobs:3 ~shared:true ~profile_seed:true ~cache_capacity:2 () in
  Alcotest.(check int) "every request warm or cold" 48 (s.S.sv_cold + s.S.sv_warm);
  Alcotest.(check bool) "bounded size" true (s.S.sv_cache_entries <= 2);
  let c = s.S.sv_cache in
  (* 3 distinct keys over capacity 2: something must have been evicted
     and the evicted rank re-published later *)
  Alcotest.(check bool) "evictions happened" true
    (c.Mtj_rjit.Sharedcache.evictions > 0);
  Alcotest.(check bool) "evicted keys requeued" true
    (c.Mtj_rjit.Sharedcache.requeues > 0);
  Alcotest.(check bool)
    "evictions bounded by publications" true
    (c.Mtj_rjit.Sharedcache.evictions <= c.Mtj_rjit.Sharedcache.publications);
  Alcotest.(check bool)
    "publication attempts bounded by misses" true
    (c.Mtj_rjit.Sharedcache.publications
     + c.Mtj_rjit.Sharedcache.quota_rejections
    <= c.Mtj_rjit.Sharedcache.misses);
  Alcotest.(check int)
    "one lookup per request" 48
    (c.Mtj_rjit.Sharedcache.shared_hits + c.Mtj_rjit.Sharedcache.local_hits
   + c.Mtj_rjit.Sharedcache.misses)

(* --- the cache itself: LRU order and tenant quotas, deterministically --- *)

module SC = Mtj_rjit.Sharedcache

type SC.entry += Tok of string

let test_lru_eviction_order () =
  (* one shard, capacity two: eviction order is fully deterministic *)
  let t = SC.create ~shards:1 ~capacity:2 () in
  let pub k =
    match SC.publish t ~ctx_uid:0 k (Tok k) with
    | SC.Published -> ()
    | SC.Exists | SC.Quota_rejected -> Alcotest.failf "publish %s refused" k
  in
  pub "A";
  pub "B";
  (* touch A: B becomes the LRU entry *)
  (match SC.find t ~ctx_uid:0 "A" with
  | Some (Tok "A") -> ()
  | _ -> Alcotest.fail "A not found");
  pub "C";
  Alcotest.(check (list (list string))) "C evicted B, A survived"
    [ [ "C"; "A" ] ] (SC.recency t);
  Alcotest.(check bool) "B gone" true (SC.find t ~ctx_uid:0 "B" = None);
  (* re-publishing the evicted B counts a requeue and evicts A (now LRU:
     the miss on B did not touch anything, C is the most recent) *)
  pub "B";
  Alcotest.(check (list (list string))) "B requeued, A evicted"
    [ [ "B"; "C" ] ] (SC.recency t);
  let st = SC.stats t in
  Alcotest.(check int) "two evictions" 2 st.SC.evictions;
  Alcotest.(check int) "one requeue" 1 st.SC.requeues;
  Alcotest.(check int) "four publications" 4 st.SC.publications;
  Alcotest.(check int) "size stays at capacity" 2 (SC.size t)

let test_tenant_quota () =
  let t = SC.create ~tenant_quota:1 () in
  Alcotest.(check bool) "first publication admitted" true
    (SC.publish t ~ctx_uid:0 ~tenant:"py:a" "k1" (Tok "k1") = SC.Published);
  (* same tenant, second live entry: refused, and nothing was stored *)
  Alcotest.(check bool) "second rejected" true
    (SC.publish t ~ctx_uid:0 ~tenant:"py:a" "k2" (Tok "k2")
    = SC.Quota_rejected);
  Alcotest.(check bool) "rejected key absent" true
    (SC.find t ~ctx_uid:0 "k2" = None);
  (* another tenant is unaffected *)
  Alcotest.(check bool) "other tenant admitted" true
    (SC.publish t ~ctx_uid:0 ~tenant:"rk:b" "k3" (Tok "k3") = SC.Published);
  (* invalidation releases the slot *)
  SC.invalidate t "k1";
  Alcotest.(check bool) "slot released after invalidate" true
    (SC.publish t ~ctx_uid:0 ~tenant:"py:a" "k2" (Tok "k2") = SC.Published);
  let st = SC.stats t in
  Alcotest.(check int) "one quota rejection counted" 1 st.SC.quota_rejections;
  Alcotest.(check int) "three publications" 3 st.SC.publications

let suite =
  [
    Alcotest.test_case "nearest-rank percentile" `Quick test_percentile;
    Alcotest.test_case "zipf stream is seed-deterministic" `Quick
      test_zipf_stream_golden;
    Alcotest.test_case "sim state invariant across mode and jobs" `Slow
      test_mode_and_jobs_invariance;
    Alcotest.test_case "program outputs invariant across seeding/eviction"
      `Slow test_output_digest_invariance;
    Alcotest.test_case "seeded -j1 session is deterministic" `Slow
      test_seeded_determinism;
    Alcotest.test_case "seeding reaches the JIT sooner" `Slow
      test_seeding_warmup_win;
    Alcotest.test_case "shared-cache accounting" `Slow
      test_shared_cache_accounting;
    Alcotest.test_case "eviction-churn accounting (tiny capacity)" `Slow
      test_eviction_churn_accounting;
    Alcotest.test_case "LRU eviction order" `Quick test_lru_eviction_order;
    Alcotest.test_case "tenant quota" `Quick test_tenant_quota;
  ]
