(** Differential tests for the serving harness: the simulated side of a
    serving session is byte-identical across shared-cache mode and job
    count (the shared cache may only change host wall time), the Zipf
    workload generator is exactly reproducible from its seed, and the
    nearest-rank percentile helper is exact.

    The workload includes richards — the bridge-heaviest program in the
    registry — so trace compilation, guard failure, bridge attachment
    and [Ir.invalidate_code]-driven recompilation all run on both the
    compiled-locally and imported-bundle paths. *)

module S = Mtj_harness.Serve
module B = Mtj_benchmarks.Registry
module Report = Mtj_harness.Report

(* --- percentile (exact nearest-rank) --- *)

let test_percentile () =
  let check = Alcotest.(check (float 1e-9)) in
  check "p50 of 4" 2.0 (Report.percentile [| 4.; 1.; 3.; 2. |] 50.0);
  check "p100 is max" 4.0 (Report.percentile [| 4.; 1.; 3.; 2. |] 100.0);
  check "p1 is min" 1.0 (Report.percentile [| 4.; 1.; 3.; 2. |] 1.0);
  check "singleton" 7.5 (Report.percentile [| 7.5 |] 99.0);
  (* nearest rank, no interpolation: p95 of 1..100 is the 95th smallest *)
  let xs = Array.init 100 (fun i -> float_of_int (i + 1)) in
  check "p95 of 1..100" 95.0 (Report.percentile xs 95.0);
  check "p99 of 1..100" 99.0 (Report.percentile xs 99.0);
  check "p50 of 1..100" 50.0 (Report.percentile xs 50.0);
  (* ceil semantics: p50 of 5 elements is the 3rd smallest *)
  check "p50 of 5" 3.0 (Report.percentile [| 5.; 4.; 3.; 2.; 1. |] 50.0);
  (match Report.percentile [||] 50.0 with
  | _ -> Alcotest.fail "empty sample set should raise"
  | exception Invalid_argument _ -> ());
  match Report.percentile [| 1.0 |] 0.0 with
  | _ -> Alcotest.fail "p=0 should raise"
  | exception Invalid_argument _ -> ()

(* --- workload generator --- *)

let test_zipf_stream_golden () =
  let reqs =
    S.gen_requests ~corpus:S.default_corpus ~requests:5000 ~zipf_s:1.1
      ~seed:42
  in
  Alcotest.(check int) "stream length" 5000 (Array.length reqs);
  (* regenerating from the same seed gives the same stream, element by
     element; a different seed diverges *)
  let again =
    S.gen_requests ~corpus:S.default_corpus ~requests:5000 ~zipf_s:1.1
      ~seed:42
  in
  Array.iteri
    (fun i r ->
      if r.S.req_bench <> again.(i).S.req_bench then
        Alcotest.failf "request %d differs across regenerations" i)
    reqs;
  let other =
    S.gen_requests ~corpus:S.default_corpus ~requests:5000 ~zipf_s:1.1
      ~seed:43
  in
  let same = ref true in
  Array.iteri
    (fun i r -> if r.S.req_bench <> other.(i).S.req_bench then same := false)
    reqs;
  Alcotest.(check bool) "different seed diverges" false !same;
  (* Zipf shape: rank 1 strictly more popular than rank 2, which beats
     the tail; every corpus entry appears in a long stream *)
  let count name =
    Array.fold_left
      (fun n r -> if r.S.req_bench = name then n + 1 else n)
      0 reqs
  in
  let rank1 = count "richards" and rank2 = count "nbody_modified" in
  Alcotest.(check bool) "rank 1 beats rank 2" true (rank1 > rank2);
  Alcotest.(check bool)
    "rank 1 dominates" true
    (rank1 > Array.length reqs / 4);
  List.iter
    (fun (_, name) ->
      Alcotest.(check bool) (name ^ " appears") true (count name > 0))
    S.default_corpus

(* --- serving differential: simulated state is mode- and jobs-invariant --- *)

(* a small mixed corpus with richards (bridge-heavy) up front *)
let corpus =
  [ (B.Py, "richards"); (B.Rk, "mandelbrot"); (B.Py, "telco") ]

let run ~jobs ~shared =
  S.serve ~jobs ~budget:200_000 ~zipf_s:1.1 ~seed:7 ~shared ~corpus
    ~requests:48 ()

let sim_view (s : S.summary) =
  Array.to_list
    (Array.map
       (fun (r : S.record) ->
         Printf.sprintf "%d %s/%s %s %s" r.S.r_id r.S.r_lang r.S.r_bench
           r.S.r_status r.S.r_digest)
       s.S.sv_records)

let test_mode_and_jobs_invariance () =
  let base = run ~jobs:1 ~shared:false in
  let view = sim_view base in
  List.iter
    (fun (jobs, shared) ->
      let s = run ~jobs ~shared in
      List.iter2
        (fun a b ->
          if a <> b then
            Alcotest.failf "request differs at jobs=%d shared=%b:\n  %s\n  %s"
              jobs shared a b)
        view (sim_view s))
    [ (1, true); (3, true); (3, false) ]

(* warm requests really import from the shared cache, and the summary's
   accounting invariants hold on a live session *)
let test_shared_cache_accounting () =
  let s = run ~jobs:3 ~shared:true in
  Alcotest.(check int) "every request warm or cold" 48 (s.S.sv_cold + s.S.sv_warm);
  let c = s.S.sv_cache in
  Alcotest.(check int)
    "one lookup per request" 48
    (c.Mtj_rjit.Sharedcache.shared_hits + c.Mtj_rjit.Sharedcache.local_hits
   + c.Mtj_rjit.Sharedcache.misses);
  Alcotest.(check int)
    "every hit is a warm request" s.S.sv_warm
    (c.Mtj_rjit.Sharedcache.shared_hits + c.Mtj_rjit.Sharedcache.local_hits);
  Alcotest.(check bool)
    "publications bounded by misses" true
    (c.Mtj_rjit.Sharedcache.publications <= c.Mtj_rjit.Sharedcache.misses);
  (* only 3 distinct (lang, program, config) keys exist *)
  Alcotest.(check bool)
    "at most one publication per key" true
    (c.Mtj_rjit.Sharedcache.publications <= 3);
  Alcotest.(check bool) "cache warmed up" true (s.S.sv_warm >= 40);
  (* per-request jitlog accounting: warm requests imported whole
     bundles, cold ones imported nothing *)
  Array.iter
    (fun (r : S.record) ->
      if r.S.r_warm then
        Alcotest.(check bool)
          "warm request counted shared code hits" true
          (r.S.r_shared_code_hits > 0)
      else
        Alcotest.(check int) "cold request has no shared hits" 0
          r.S.r_shared_code_hits)
    s.S.sv_records;
  (* the session with the cache off never touches it *)
  let off = run ~jobs:3 ~shared:false in
  Alcotest.(check int) "off: all cold" 48 off.S.sv_cold;
  let oc = off.S.sv_cache in
  Alcotest.(check int) "off: no lookups" 0
    (oc.Mtj_rjit.Sharedcache.shared_hits + oc.Mtj_rjit.Sharedcache.local_hits
   + oc.Mtj_rjit.Sharedcache.misses + oc.Mtj_rjit.Sharedcache.publications)

let suite =
  [
    Alcotest.test_case "nearest-rank percentile" `Quick test_percentile;
    Alcotest.test_case "zipf stream is seed-deterministic" `Quick
      test_zipf_stream_golden;
    Alcotest.test_case "sim state invariant across mode and jobs" `Slow
      test_mode_and_jobs_invariance;
    Alcotest.test_case "shared-cache accounting" `Slow
      test_shared_cache_accounting;
  ]
