(** Tests for the domain worker pool and the parallel runner path.

    The determinism test is the load-bearing one: it checks that filling
    the run cache from four worker domains produces bit-identical
    simulation results to running serially, which is the property the
    whole `-j N` harness rests on (see DESIGN.md, "Domain-safety
    audit"). *)

module P = Mtj_harness.Pool
module R = Mtj_harness.Runner

exception Boom of int

(* more jobs than workers: everything completes, results in order *)
let test_completion () =
  let t = P.create ~jobs:3 in
  let futs = List.init 50 (fun i -> P.submit t (fun () -> i * i)) in
  let results = List.map P.await futs in
  P.shutdown t;
  Alcotest.(check (list int))
    "squares in submission order"
    (List.init 50 (fun i -> i * i))
    results

(* a raising job propagates its exception to [await]; other jobs on the
   same pool are unaffected *)
let test_exception_propagation () =
  let t = P.create ~jobs:2 in
  let ok = P.submit t (fun () -> 41 + 1) in
  let bad = P.submit t (fun () -> raise (Boom 7)) in
  Alcotest.(check int) "healthy job unaffected" 42 (P.await ok);
  (match P.await bad with
  | n -> Alcotest.failf "expected Boom, got %d" n
  | exception Boom 7 -> ());
  P.shutdown t;
  (* submitting to a shut-down pool is an error, not a hang *)
  match P.submit t (fun () -> 0) with
  | _ -> Alcotest.fail "submit after shutdown should raise"
  | exception Invalid_argument _ -> ()

(* [map] drains every job even when one fails, then re-raises the first
   failure in list order *)
let test_map_exception () =
  let ran = Atomic.make 0 in
  match
    P.map ~jobs:4
      (fun i ->
        Atomic.incr ran;
        if i = 5 then raise (Boom i) else i)
      (List.init 12 Fun.id)
  with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom 5 ->
      Alcotest.(check int) "every job still ran" 12 (Atomic.get ran)

(* shutdown is idempotent: a second call (the serving teardown path can
   reach one) must neither hang nor double-join the workers *)
let test_shutdown_twice () =
  let t = P.create ~jobs:2 in
  let futs = List.init 8 (fun i -> P.submit t (fun () -> i)) in
  ignore (List.map P.await futs);
  P.shutdown t;
  P.shutdown t;
  (* and the closed state still rejects new work *)
  match P.submit t (fun () -> 0) with
  | _ -> Alcotest.fail "submit after double shutdown should raise"
  | exception Invalid_argument _ -> ()

(* exceptions raised under contention (many failing jobs racing on few
   workers) each propagate to their own future with a usable backtrace,
   and never poison a neighbouring job *)
let test_exceptions_under_contention () =
  let t = P.create ~jobs:3 in
  let futs =
    List.init 64 (fun i ->
        ( i,
          P.submit t (fun () ->
              if i land 1 = 1 then raise (Boom i) else i * 3) ))
  in
  List.iter
    (fun (i, fut) ->
      if i land 1 = 1 then (
        Printexc.record_backtrace true;
        match P.await fut with
        | n -> Alcotest.failf "job %d: expected Boom, got %d" i n
        | exception Boom j -> Alcotest.(check int) "own payload" i j)
      else Alcotest.(check int) "healthy job result" (i * 3) (P.await fut))
    futs;
  P.shutdown t

(* burn a little CPU so job durations vary and workers interleave *)
let spin n =
  let acc = ref 0 in
  for i = 1 to 200 * (1 + (n land 31)) do
    acc := (!acc * 7919) + i
  done;
  !acc

let prop_map_matches_list_map =
  QCheck.Test.make ~name:"Pool.map = List.map on random job mixes"
    ~count:25
    QCheck.(pair (int_range 1 6) (small_list small_int))
    (fun (jobs, xs) ->
      let f x = (spin x lxor x) land 0xffff in
      P.map ~jobs f xs = List.map f xs)

(* the property the harness depends on: prefetching the cache from four
   worker domains yields exactly the results of serial runs *)
let sample_runs =
  [
    ("telco", R.Cpython);
    ("telco", R.Pypy_jit);
    ("richards", R.Pypy_jit);
    ("nbody", R.Pycket_jit);
  ]

let digest (r : R.result) =
  Printf.sprintf "%s/%s: %s insns=%d cycles=%.3f ticks=%d out=%S"
    r.R.bench_name
    (R.config_name r.R.config)
    (match r.R.status with
    | R.Ok_run -> "ok"
    | R.Hit_budget -> "budget"
    | R.Failed e -> "failed:" ^ e)
    r.R.insns r.R.cycles r.R.ticks r.R.output

let test_parallel_determinism () =
  let budget = 2_000_000 in
  R.clear_cache ();
  let serial =
    List.map (fun (b, c) -> digest (R.run ~budget b c)) sample_runs
  in
  R.clear_cache ();
  R.prefetch ~jobs:4 ~budget sample_runs;
  let parallel =
    List.map (fun (b, c) -> digest (R.run ~budget b c)) sample_runs
  in
  (* the cache is keyed by (bench, config): drop the small-budget
     entries so later suites see a clean slate *)
  R.clear_cache ();
  List.iter2
    (Alcotest.(check string) "parallel result = serial result")
    serial parallel

(* run_many returns results in request order, independent of worker
   scheduling, and tolerates duplicate keys *)
let test_run_many_order () =
  let budget = 2_000_000 in
  R.clear_cache ();
  let pairs = sample_runs @ [ List.hd sample_runs ] in
  let rs = R.run_many ~jobs:4 ~budget pairs in
  R.clear_cache ();
  Alcotest.(check (list string))
    "results line up with requests"
    (List.map fst pairs)
    (List.map (fun (r : R.result) -> r.R.bench_name) rs)

let suite =
  [
    Alcotest.test_case "50 jobs on 3 workers" `Quick test_completion;
    Alcotest.test_case "exception propagation" `Quick
      test_exception_propagation;
    Alcotest.test_case "map drains on failure" `Quick test_map_exception;
    Alcotest.test_case "shutdown is idempotent" `Quick test_shutdown_twice;
    Alcotest.test_case "exceptions under contention" `Quick
      test_exceptions_under_contention;
    QCheck_alcotest.to_alcotest prop_map_matches_list_map;
    Alcotest.test_case "parallel prefetch is deterministic" `Slow
      test_parallel_determinism;
    Alcotest.test_case "run_many preserves order" `Slow test_run_many_order;
  ]
