(** Property-based soundness test for the trace optimizer.

    Generates random straight-line traces (integer arithmetic, always-true
    class guards with live resume snapshots, and heap traffic through
    cells, tuples and lists) and checks that executing the raw IR and the
    IR after every optimizer configuration yields the same [Finish]
    value. This attacks exactly the class of bug we found during bring-up
    (virtuals/substitution corruption): any unsound rewrite of data flow
    changes the xor-accumulated result. *)

open Mtj_rjit
module V = Mtj_rt.Value

type rkind = RInt | RArr | RCell | RList

let guard_ctr = ref 0

type gen_state = {
  rng : Random.State.t;
  mutable ops : Ir.op list; (* reversed *)
  mutable regs : (int * rkind) list; (* newest first *)
  mutable bound : (int * int) list; (* int reg -> magnitude bound *)
  mutable next : int;
}

let fresh st kind =
  let r = st.next in
  st.next <- r + 1;
  st.regs <- (r, kind) :: st.regs;
  r

let push st op = st.ops <- op :: st.ops

let pick_kind st kind =
  let cands = List.filter (fun (_, k) -> k = kind) st.regs in
  match cands with
  | [] -> None
  | _ -> Some (fst (List.nth cands (Random.State.int st.rng (List.length cands))))

let bound_of st r = try List.assoc r st.bound with Not_found -> 1 lsl 20

let set_bound st r b = st.bound <- (r, b) :: st.bound

let emit st ?(result = -1) opcode args = push st { Ir.opcode; args; result }

let emit_guard st =
  match pick_kind st RInt with
  | None -> ()
  | Some r ->
      incr guard_ctr;
      (* a resume snapshot keeping up to 4 random registers live *)
      let n = 1 + Random.State.int st.rng 4 in
      let all = Array.of_list (List.map fst st.regs) in
      let live =
        Array.init n (fun _ ->
            Ir.S_reg all.(Random.State.int st.rng (Array.length all)))
      in
      push st
        {
          Ir.opcode =
            Ir.Guard
              {
                Ir.guard_id = 500_000 + !guard_ctr;
                gkind = Ir.G_class Ir.Ty_int;
                resume =
                  {
                    Ir.frames =
                      [
                        {
                          Ir.snap_code = 1;
                          snap_pc = 0;
                          snap_locals = live;
                          snap_stack = [||];
                          snap_discard = false;
                        };
                      ];
                    r_virtuals = [||];
                  };
                fail_count = 0;
                bridge = None;
                bridgeable = true;
              };
          args = [| Ir.Reg r |];
          result = -1;
        }

let gen_step st =
  let rnd n = Random.State.int st.rng n in
  let int_reg () = Option.get (pick_kind st RInt) in
  match rnd 13 with
  | 0 | 1 | 2 ->
      (* add/sub/xor/and/or on two int regs *)
      let a = int_reg () and b = int_reg () in
      let ba = bound_of st a and bb = bound_of st b in
      let opc, bnd =
        match rnd 5 with
        | 0 -> (Ir.Int_add, ba + bb)
        | 1 -> (Ir.Int_sub, ba + bb)
        | 2 -> (Ir.Int_xor, 2 * max ba bb)
        | 3 -> (Ir.Int_and, 2 * max ba bb)
        | _ -> (Ir.Int_or, 2 * max ba bb)
      in
      if bnd < 1 lsl 50 then begin
        let r = fresh st RInt in
        emit st ~result:r opc [| Ir.Reg a; Ir.Reg b |];
        set_bound st r bnd
      end
  | 3 ->
      (* multiply by a small constant *)
      let a = int_reg () in
      let c = rnd 15 - 7 in
      let bnd = bound_of st a * (abs c + 1) in
      if bnd < 1 lsl 50 then begin
        let r = fresh st RInt in
        emit st ~result:r Ir.Int_mul [| Ir.Reg a; Ir.Const (V.of_int c) |];
        set_bound st r bnd
      end
  | 4 ->
      (* re-bound through mod *)
      let a = int_reg () in
      let c = 2 + rnd 49 in
      let r = fresh st RInt in
      emit st ~result:r Ir.Int_mod [| Ir.Reg a; Ir.Const (V.of_int c) |];
      set_bound st r c
  | 5 ->
      (* a cell: create with a value, read back *)
      let v = int_reg () in
      let cell = fresh st RCell in
      emit st ~result:cell Ir.New_cell [| Ir.Reg v |];
      let r = fresh st RInt in
      emit st ~result:r Ir.Getcell [| Ir.Reg cell |];
      set_bound st r (bound_of st v)
  | 6 -> (
      (* mutate an existing cell *)
      match pick_kind st RCell with
      | None -> ()
      | Some cell ->
          let v = int_reg () in
          emit st Ir.Setcell [| Ir.Reg cell; Ir.Reg v |])
  | 7 -> (
      (* read an existing cell *)
      match pick_kind st RCell with
      | None -> ()
      | Some cell ->
          let r = fresh st RInt in
          emit st ~result:r Ir.Getcell [| Ir.Reg cell |];
          set_bound st r (1 lsl 21))
  | 8 ->
      (* a 2-tuple *)
      let a = int_reg () and b = int_reg () in
      let t = fresh st RArr in
      emit st ~result:t (Ir.New_array 2) [| Ir.Reg a; Ir.Reg b |]
  | 9 -> (
      (* read a tuple element *)
      match pick_kind st RArr with
      | None -> ()
      | Some t ->
          let r = fresh st RInt in
          emit st ~result:r Ir.Getarrayitem_gc
            [| Ir.Reg t; Ir.Const (V.of_int (rnd 2)) |];
          set_bound st r (1 lsl 21))
  | 10 -> (
      (* lists: create or mutate+read *)
      match pick_kind st RList with
      | None ->
          let a = int_reg () and b = int_reg () in
          let l = fresh st RList in
          emit st ~result:l (Ir.New_list 2) [| Ir.Reg a; Ir.Reg b |]
      | Some l ->
          let v = int_reg () in
          emit st Ir.Setlistitem
            [| Ir.Reg l; Ir.Const (V.of_int (rnd 2)); Ir.Reg v |];
          let r = fresh st RInt in
          emit st ~result:r Ir.Getlistitem
            [| Ir.Reg l; Ir.Const (V.of_int (rnd 2)) |];
          set_bound st r (1 lsl 21))
  | 11 -> (
      (* a guard that CAN fail: the run then deoptimizes, and the
         materialized frames must match the unoptimized run's exactly *)
      match pick_kind st RInt with
      | None -> ()
      | Some r ->
          incr guard_ctr;
          let n = 1 + Random.State.int st.rng 4 in
          let all = Array.of_list (List.map fst st.regs) in
          let live =
            Array.init n (fun _ ->
                Ir.S_reg all.(Random.State.int st.rng (Array.length all)))
          in
          let gkind =
            if Random.State.bool st.rng then
              Ir.G_index_lt (* fails when r outside [0, bound) *)
            else Ir.G_class Ir.Ty_int (* always holds: control case *)
          in
          let args =
            match gkind with
            | Ir.G_index_lt ->
                [| Ir.Reg r; Ir.Const (V.of_int (Random.State.int st.rng 40)) |]
            | _ -> [| Ir.Reg r |]
          in
          push st
            {
              Ir.opcode =
                Ir.Guard
                  {
                    Ir.guard_id = 700_000 + !guard_ctr;
                    gkind;
                    resume =
                      {
                        Ir.frames =
                          [
                            {
                              Ir.snap_code = 1;
                              snap_pc = !guard_ctr;
                              snap_locals = live;
                              snap_stack = [||];
                              snap_discard = false;
                            };
                          ];
                        r_virtuals = [||];
                      };
                    fail_count = 0;
                    bridge = None;
                    bridgeable = true;
                  };
              args;
              result = -1;
            })
  | _ -> emit_guard st

(* fold every live register into one result so any dataflow corruption
   changes the final answer *)
let epilogue st =
  let acc = ref 0 in
  let xor_in src =
    let r = fresh st RInt in
    emit st ~result:r Ir.Int_xor [| Ir.Reg !acc; src |];
    acc := r
  in
  List.iter
    (fun (r, k) ->
      match k with
      | RInt -> xor_in (Ir.Reg r)
      | RCell ->
          let v = fresh st RInt in
          emit st ~result:v Ir.Getcell [| Ir.Reg r |];
          xor_in (Ir.Reg v)
      | RArr ->
          let v = fresh st RInt in
          emit st ~result:v Ir.Getarrayitem_gc [| Ir.Reg r; Ir.Const (V.of_int 0) |];
          xor_in (Ir.Reg v)
      | RList ->
          let v = fresh st RInt in
          emit st ~result:v Ir.Getlistitem [| Ir.Reg r; Ir.Const (V.of_int 1) |];
          xor_in (Ir.Reg v))
    st.regs;
  emit st Ir.Finish [| Ir.Reg !acc |]

let entry_slots = 3

let gen_program seed =
  let rng = Random.State.make [| seed; 0x5eed |] in
  let st = { rng; ops = []; regs = []; bound = []; next = entry_slots } in
  for r = 0 to entry_slots - 1 do
    st.regs <- (r, RInt) :: st.regs;
    set_bound st r 101
  done;
  let nsteps = 4 + Random.State.int rng 28 in
  for _ = 1 to nsteps do
    gen_step st
  done;
  epilogue st;
  let entry =
    Array.init entry_slots (fun _ -> V.of_int (Random.State.int rng 201 - 100))
  in
  (Array.of_list (List.rev st.ops), entry)

(* deep-copy ops so each optimizer run sees pristine guards (optimize
   mutates nothing, but Backend/Executor update fail counts in place) *)
let copy_ops ops =
  Array.map
    (fun (op : Ir.op) ->
      match op.Ir.opcode with
      | Ir.Guard g ->
          {
            op with
            Ir.opcode =
              Ir.Guard
                {
                  g with
                  Ir.resume =
                    {
                      Ir.frames =
                        List.map
                          (fun (f : Ir.frame_snap) ->
                            { f with Ir.snap_locals = Array.copy f.Ir.snap_locals })
                          g.Ir.resume.Ir.frames;
                      r_virtuals = Array.copy g.Ir.resume.Ir.r_virtuals;
                    };
                };
          }
      | _ -> { op with Ir.args = Array.copy op.Ir.args })
    ops

let run_config (cfg : Mtj_core.Config.t) ~optimizing ops entry =
  let rtc = Mtj_rt.Ctx.create ~config:cfg () in
  let jitlog = Jitlog.create () in
  let ops = copy_ops ops in
  let ops, loop_base, loop_start =
    if optimizing then Opt.optimize cfg ~kind:`Bridge ops ~entry_slots
    else (ops, 0, 0)
  in
  let trace =
    Backend.compile jitlog rtc
      ~kind:(Ir.Bridge { from_guard = -1; loop_code = 0; loop_pc = 0 })
      ~entry_slots ~loop_base ~loop_start ops
  in
  let exit = Executor.run rtc jitlog ~trace ~entry:(Array.copy entry) in
  match (exit.Executor.finished, exit.Executor.failed_guard) with
  | Some v, None -> "finish:" ^ V.repr v
  | None, Some g ->
      (* deopt: fingerprint the failed guard and every materialized
         frame slot (virtual objects print their rebuilt contents) *)
      let buf = Buffer.create 64 in
      Buffer.add_string buf (Printf.sprintf "deopt:%d" g.Ir.guard_id);
      List.iter
        (fun (f : Executor.deopt_frame) ->
          Buffer.add_string buf
            (Printf.sprintf "|pc=%d:" f.Executor.df_pc);
          Array.iter
            (fun v -> Buffer.add_string buf (V.repr v ^ ","))
            f.Executor.df_locals)
        exit.Executor.frames;
      Buffer.contents buf
  | _ -> Alcotest.fail "trace did not finish"

let base = Mtj_core.Config.default

let configs =
  [
    ("noopt", { base with Mtj_core.Config.opt_fold = false;
                opt_guard_elim = false; opt_forward = false;
                opt_virtuals = false; opt_peel = false });
    ("full", base);
    ("novirtuals", { base with Mtj_core.Config.opt_virtuals = false });
    ("noforward", { base with Mtj_core.Config.opt_forward = false });
    ("nofold", { base with Mtj_core.Config.opt_fold = false });
  ]

let prop_opt_sound =
  QCheck.Test.make ~name:"optimizer preserves random trace semantics"
    ~count:400
    (QCheck.make QCheck.Gen.(int_range 1 1_000_000))
    (fun seed ->
      let ops, entry = gen_program seed in
      let reference = run_config base ~optimizing:false ops entry in
      List.for_all
        (fun (name, cfg) ->
          let v = run_config cfg ~optimizing:true ops entry in
          if String.equal v reference then true
          else
            QCheck.Test.fail_reportf
              "seed %d config %s: optimized=%s reference=%s" seed name v
              reference)
        configs)

(* meta-check: the generator really produces both outcomes, so the
   property above is exercising the deopt path, not just Finish *)
let test_generator_covers_deopt () =
  let finishes = ref 0 and deopts = ref 0 in
  for seed = 1 to 200 do
    let ops, entry = gen_program seed in
    let r = run_config base ~optimizing:false ops entry in
    if String.length r >= 6 && String.sub r 0 6 = "deopt:" then incr deopts
    else incr finishes
  done;
  Alcotest.(check bool) "some runs finish" true (!finishes > 20);
  Alcotest.(check bool) "some runs deopt" true (!deopts > 20)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_opt_sound;
    Alcotest.test_case "generator covers finish and deopt" `Quick
      test_generator_covers_deopt;
  ]
