(** Differential test of the engine's staged (batched) charging fast
    path against a straight-line reference implementation of the
    pre-batching algorithm.

    The reference model below replays every charging rule exactly as the
    unstaged engine performed it: per-event counter-array updates, the
    per-bundle cycle arithmetic ([float n *. inv_width], penalty adds)
    in the same order, per-bundle budget checks, and the sink's
    record-then-sample annotation behaviour.  Random interleavings of
    bundle emits / [emit_static] blocks / conditional + indirect
    branches / memory accesses / phase pushes + pops / mid-stream
    counter reads — plus deterministic budget-exhaustion boundaries —
    are driven through a real [Engine] (with a [Sink] attached) and
    through the model.  Everything observable must be BYTE-IDENTICAL:
    per-phase counters (float cycles compared exactly via [%.17g]),
    engine totals, the budget-exhaustion point, ring-buffer events and
    counter samples. *)

module Engine = Mtj_machine.Engine
module Counters = Mtj_machine.Counters
module Predictor = Mtj_machine.Predictor
module Dcache = Mtj_machine.Dcache
module Sink = Mtj_obs.Sink
module Phase = Mtj_core.Phase
module Cost = Mtj_core.Cost
module Config = Mtj_core.Config
module Annot = Mtj_core.Annot

let all_phases = Array.of_list Phase.all

(* ---------- the event language ---------- *)

type ev =
  | Emit of Cost.t
  | Emit_block of Cost.t array * int * int  (* costs, lo, hi *)
  | Branch of int * bool                    (* site, taken *)
  | Branch_ind of int * int                 (* site, target *)
  | Mem of int * bool                       (* addr, write *)
  | Push of Phase.t
  | Pop
  | Tick                                    (* Dispatch_tick annotation *)
  | Marker of int                           (* App_marker annotation *)
  | Read                                    (* mid-stream counter read *)

(* ---------- reference model: the unstaged charging algorithm ---------- *)

module Ref_model = struct
  exception Budget

  type t = {
    pred : Predictor.t;
    dc : Dcache.t;
    insns_a : int array;
    cycles_a : float array;
    branches_a : int array;
    misses_a : int array;
    loads_a : int array;
    stores_a : int array;
    cmisses_a : int array;
    mutable phase : Phase.t;
    mutable stack : Phase.t list;
    mutable interp_width : float;
    mutable inv_width : float;
    mutable insns : int;
    mutable cycles : float;
    budget : int;
    (* sink mirror *)
    window : int;
    mutable next_mark : int;
    mutable ticks : int;
    mutable rev_events : (string * int * float) list;
    mutable rev_samples : string list;
  }

  let width t = function
    | Phase.Interpreter | Phase.Tracing | Phase.Native -> t.interp_width
    | Phase.Jit -> 1.95
    | Phase.Jit_call -> 1.75
    | Phase.Gc_minor | Phase.Gc_major -> 2.0
    | Phase.Blackhole -> 1.05

  let total_snapshot t =
    let insns = ref 0 and cycles = ref 0.0 and branches = ref 0 in
    let misses = ref 0 and loads = ref 0 and stores = ref 0 in
    let cmisses = ref 0 in
    for i = 0 to Phase.count - 1 do
      insns := !insns + t.insns_a.(i);
      cycles := !cycles +. t.cycles_a.(i);
      branches := !branches + t.branches_a.(i);
      misses := !misses + t.misses_a.(i);
      loads := !loads + t.loads_a.(i);
      stores := !stores + t.stores_a.(i);
      cmisses := !cmisses + t.cmisses_a.(i)
    done;
    Printf.sprintf "i=%d c=%.17g b=%d bm=%d l=%d s=%d cm=%d" !insns !cycles
      !branches !misses !loads !stores !cmisses

  let take_sample t insns =
    t.rev_samples <-
      Printf.sprintf "@%d cy=%.17g ticks=%d %s" insns t.cycles t.ticks
        (total_snapshot t)
      :: t.rev_samples

  let create ~budget ~interp_width ~window =
    let n = Phase.count in
    let t =
      {
        pred = Predictor.create ();
        dc = Dcache.create ();
        insns_a = Array.make n 0;
        cycles_a = Array.make n 0.0;
        branches_a = Array.make n 0;
        misses_a = Array.make n 0;
        loads_a = Array.make n 0;
        stores_a = Array.make n 0;
        cmisses_a = Array.make n 0;
        phase = Phase.Interpreter;
        stack = [];
        interp_width;
        inv_width = 1.0 /. interp_width;
        insns = 0;
        cycles = 0.0;
        budget;
        window;
        next_mark = window;
        ticks = 0;
        rev_events = [];
        rev_samples = [];
      }
    in
    (* mirror of Sink.attach's baseline sample *)
    take_sample t 0;
    t

  let bump t n =
    t.insns <- t.insns + n;
    if t.insns > t.budget then raise Budget

  let emit t (c : Cost.t) =
    let n = Cost.total c in
    if n > 0 then begin
      let cy = float_of_int n *. t.inv_width in
      t.cycles <- t.cycles +. cy;
      let i = Phase.index t.phase in
      t.insns_a.(i) <- t.insns_a.(i) + n;
      t.cycles_a.(i) <- t.cycles_a.(i) +. cy;
      t.loads_a.(i) <- t.loads_a.(i) + c.Cost.load;
      t.stores_a.(i) <- t.stores_a.(i) + c.Cost.store;
      bump t n
    end

  let charge_branch t correct =
    let cy = t.inv_width +. (if correct then 0.0 else 14.0) in
    t.cycles <- t.cycles +. cy;
    let i = Phase.index t.phase in
    t.insns_a.(i) <- t.insns_a.(i) + 1;
    t.branches_a.(i) <- t.branches_a.(i) + 1;
    if not correct then t.misses_a.(i) <- t.misses_a.(i) + 1;
    t.cycles_a.(i) <- t.cycles_a.(i) +. cy;
    bump t 1

  let mem t ~addr ~write =
    let hit = Dcache.access t.dc ~addr in
    let cy = t.inv_width in
    t.cycles <- t.cycles +. cy;
    let i = Phase.index t.phase in
    t.insns_a.(i) <- t.insns_a.(i) + 1;
    t.cycles_a.(i) <- t.cycles_a.(i) +. cy;
    if write then t.stores_a.(i) <- t.stores_a.(i) + 1
    else t.loads_a.(i) <- t.loads_a.(i) + 1;
    if not hit then begin
      t.cycles <- t.cycles +. 18.0;
      t.cmisses_a.(i) <- t.cmisses_a.(i) + 1;
      t.cycles_a.(i) <- t.cycles_a.(i) +. 18.0
    end;
    bump t 1

  (* mirror of Sink.on_annot: record the event, then the sampling check *)
  let annot t tag =
    (match tag with
    | `Tick -> t.ticks <- t.ticks + 1
    | `Push p ->
        t.rev_events <-
          (Printf.sprintf "push:%s" (Phase.name p), t.insns, t.cycles)
          :: t.rev_events
    | `Pop p ->
        t.rev_events <-
          (Printf.sprintf "pop:%s" (Phase.name p), t.insns, t.cycles)
          :: t.rev_events
    | `Marker n ->
        t.rev_events <-
          (Printf.sprintf "marker:%d" n, t.insns, t.cycles) :: t.rev_events);
    if t.insns >= t.next_mark then begin
      take_sample t t.insns;
      t.next_mark <- t.next_mark + t.window
    end

  let push t p =
    annot t (`Push p);
    t.stack <- t.phase :: t.stack;
    t.phase <- p;
    t.inv_width <- 1.0 /. width t t.phase

  let pop t =
    match t.stack with
    | [] -> invalid_arg "Ref_model.pop"
    | p :: rest ->
        let popped = t.phase in
        t.phase <- p;
        t.stack <- rest;
        t.inv_width <- 1.0 /. width t t.phase;
        annot t (`Pop popped)

  let phase_digest t p =
    let i = Phase.index p in
    Printf.sprintf "%s: i=%d c=%.17g b=%d bm=%d l=%d s=%d cm=%d" (Phase.name p)
      t.insns_a.(i) t.cycles_a.(i) t.branches_a.(i) t.misses_a.(i)
      t.loads_a.(i) t.stores_a.(i) t.cmisses_a.(i)

  let read_digest t =
    String.concat "\n"
      (List.map (phase_digest t) Phase.all
      @ [
          "total " ^ total_snapshot t;
          Printf.sprintf "eng i=%d cy=%.17g" t.insns t.cycles;
        ])

  let apply t = function
    | Emit c -> emit t c
    | Emit_block (costs, lo, hi) ->
        for i = lo to hi - 1 do
          emit t costs.(i)
        done
    | Branch (site, taken) ->
        charge_branch t (Predictor.conditional t.pred ~site ~taken)
    | Branch_ind (site, target) ->
        charge_branch t (Predictor.indirect t.pred ~site ~target)
    | Mem (addr, write) -> mem t ~addr ~write
    | Push p -> push t p
    | Pop -> pop t
    | Tick -> annot t `Tick
    | Marker n -> annot t (`Marker n)
    | Read -> ()
end

(* ---------- engine-side digests ---------- *)

let snap_str (s : Counters.snapshot) =
  Printf.sprintf "i=%d c=%.17g b=%d bm=%d l=%d s=%d cm=%d" s.Counters.insns
    s.Counters.cycles s.Counters.branches s.Counters.branch_misses
    s.Counters.loads s.Counters.stores s.Counters.cache_misses

let eng_read_digest eng =
  let c = Engine.counters eng in
  String.concat "\n"
    (List.map
       (fun p -> Phase.name p ^ ": " ^ snap_str (Counters.phase c p))
       Phase.all
    @ [
        "total " ^ snap_str (Counters.total c);
        Printf.sprintf "eng i=%d cy=%.17g" (Engine.total_insns eng)
          (Engine.total_cycles eng);
      ])

let sink_events_digest sink =
  let buf = Buffer.create 256 in
  Sink.iter_events sink (fun e ->
      let name =
        match e.Sink.kind with
        | Sink.Phase_begin p -> "push:" ^ Phase.name p
        | Sink.Phase_end p -> "pop:" ^ Phase.name p
        | Sink.Marker n -> Printf.sprintf "marker:%d" n
        | Sink.Trace_enter _ | Sink.Trace_exit _ | Sink.Guard_fail _
        | Sink.Trace_compile _ | Sink.Trace_abort _ ->
            "unexpected"
      in
      Buffer.add_string buf
        (Printf.sprintf "%s@%d cy=%.17g\n" name e.Sink.at_insns
           e.Sink.at_cycles));
  Buffer.contents buf

let model_events_digest (m : Ref_model.t) =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, insns, cycles) ->
      Buffer.add_string buf
        (Printf.sprintf "%s@%d cy=%.17g\n" name insns cycles))
    (List.rev m.Ref_model.rev_events);
  Buffer.contents buf

let sink_samples_digest sink =
  String.concat "\n"
    (List.map
       (fun (s : Sink.sample) ->
         Printf.sprintf "@%d cy=%.17g ticks=%d %s" s.Sink.s_insns
           s.Sink.s_cycles s.Sink.s_ticks (snap_str s.Sink.s_counters))
       (Sink.samples sink))

let model_samples_digest (m : Ref_model.t) =
  String.concat "\n" (List.rev m.Ref_model.rev_samples)

(* ---------- the differential driver ---------- *)

type outcome = {
  stopped_at : int option;  (* event index where the budget raised *)
  reads : string list;      (* digests collected at [Read] events *)
  final : string;
  events : string;
  samples : string;
}

let window = 64

let run_engine ~budget ~interp_width (events : ev array) : outcome =
  let cfg = { Config.default with Config.insn_budget = budget } in
  let eng = Engine.create ~config:cfg () in
  Engine.set_interp_width eng interp_width;
  let sink = Sink.attach ~capacity:4096 ~counter_window:window eng in
  let reads = ref [] in
  let stopped = ref None in
  (try
     Array.iteri
       (fun i ev ->
         try
           match ev with
           | Emit c -> Engine.emit eng c
           | Emit_block (costs, lo, hi) -> Engine.emit_static eng costs ~lo ~hi
           | Branch (site, taken) -> Engine.branch eng ~site ~taken
           | Branch_ind (site, target) ->
               Engine.branch_indirect eng ~site ~target
           | Mem (addr, write) -> Engine.mem_access eng ~addr ~write
           | Push p -> Engine.push_phase eng p
           | Pop -> Engine.pop_phase eng
           | Tick -> Engine.annot eng Annot.Dispatch_tick
           | Marker n -> Engine.annot eng (Annot.App_marker n)
           | Read -> reads := eng_read_digest eng :: !reads
         with Engine.Budget_exhausted ->
           stopped := Some i;
           raise Exit)
       events
   with Exit -> ());
  {
    stopped_at = !stopped;
    reads = List.rev !reads;
    final = eng_read_digest eng;
    events = sink_events_digest sink;
    samples = sink_samples_digest sink;
  }

let run_model ~budget ~interp_width (events : ev array) : outcome =
  let m = Ref_model.create ~budget ~interp_width ~window in
  let reads = ref [] in
  let stopped = ref None in
  (try
     Array.iteri
       (fun i ev ->
         match ev with
         | Read -> reads := Ref_model.read_digest m :: !reads
         | ev -> (
             try Ref_model.apply m ev
             with Ref_model.Budget ->
               stopped := Some i;
               raise Exit))
       events
   with Exit -> ());
  {
    stopped_at = !stopped;
    reads = List.rev !reads;
    final = Ref_model.read_digest m;
    events = model_events_digest m;
    samples = model_samples_digest m;
  }

let outcome_str (o : outcome) =
  Printf.sprintf
    "stopped=%s\n--- reads:\n%s\n--- final:\n%s\n--- events:\n%s--- samples:\n%s\n"
    (match o.stopped_at with None -> "-" | Some i -> string_of_int i)
    (String.concat "\n~\n" o.reads)
    o.final o.events o.samples

let check_same name events ~budget ~interp_width =
  let e = run_engine ~budget ~interp_width events in
  let m = run_model ~budget ~interp_width events in
  Alcotest.(check string) name (outcome_str m) (outcome_str e)

(* ---------- generators ---------- *)

let gen_cost rng =
  let f () = if Random.State.int rng 3 = 0 then Random.State.int rng 5 else 0 in
  let c =
    Cost.make ~alu:(f ()) ~fpu:(f ()) ~load:(f ()) ~store:(f ()) ~other:(f ())
      ()
  in
  if Cost.total c = 0 && Random.State.bool rng then Cost.make ~alu:1 () else c

let gen_events rng n : ev array =
  (* explicit loop: [depth] tracking needs in-index-order generation so a
     generated [Pop] never precedes its [Push] in the replayed stream *)
  let out = Array.make n Read in
  let depth = ref 0 in
  for idx = 0 to n - 1 do
    out.(idx) <-
      (match Random.State.int rng 100 with
      | k when k < 30 -> Emit (gen_cost rng)
      | k when k < 40 ->
          let len = 1 + Random.State.int rng 4 in
          let costs = Array.init len (fun _ -> gen_cost rng) in
          let lo = Random.State.int rng (len + 1) in
          let hi = lo + Random.State.int rng (len - lo + 1) in
          Emit_block (costs, lo, hi)
      | k when k < 55 ->
          Branch (Random.State.int rng 8, Random.State.bool rng)
      | k when k < 65 ->
          Branch_ind (Random.State.int rng 8, Random.State.int rng 5)
      | k when k < 78 ->
          Mem (Random.State.int rng 100_000, Random.State.bool rng)
      | k when k < 86 ->
          incr depth;
          Push all_phases.(Random.State.int rng (Array.length all_phases))
      | k when k < 92 ->
          if !depth > 0 then begin
            decr depth;
            Pop
          end
          else Emit (gen_cost rng)
      | k when k < 95 -> Tick
      | k when k < 98 -> Marker (Random.State.int rng 10)
      | _ -> Read)
  done;
  out

let prop_batched_identical =
  QCheck.Test.make ~count:300
    ~name:"staged charging is byte-identical to the reference algorithm"
    (QCheck.make QCheck.Gen.(int_range 1 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed; 0xC4A6 |] in
      let n = 20 + Random.State.int rng 400 in
      let events = gen_events rng n in
      (* small budgets sometimes, to land the exhaustion boundary inside
         the stream (including inside emit_static blocks) *)
      let budget =
        if Random.State.int rng 3 = 0 then 50 + Random.State.int rng 400
        else Config.default.Config.insn_budget
      in
      let interp_width = [| 1.0; 2.0; 2.8; 3.5 |].(Random.State.int rng 4) in
      let e = run_engine ~budget ~interp_width events in
      let m = run_model ~budget ~interp_width events in
      if outcome_str e <> outcome_str m then
        QCheck.Test.fail_reportf
          "seed %d diverged:\n--- reference:\n%s\n--- staged:\n%s" seed
          (outcome_str m) (outcome_str e)
      else true)

(* ---------- deterministic scenarios ---------- *)

let scenario_phases () =
  check_same "phase interleaving" ~budget:1_000_000 ~interp_width:2.0
    [|
      Emit (Cost.make ~alu:3 ~load:1 ());
      Push Phase.Tracing;
      Emit (Cost.make ~alu:2 ~store:2 ());
      Push Phase.Jit;
      Emit (Cost.make ~other:4 ());
      Branch (3, true);
      Pop;
      Mem (42, false);
      Mem (42, true);
      Pop;
      Read;
      Emit (Cost.make ~alu:1 ());
      Read;
    |]

let scenario_reads_every_event () =
  let rng = Random.State.make [| 7; 0xC4A6 |] in
  let evs = gen_events rng 120 in
  let interleaved =
    Array.concat (Array.to_list (Array.map (fun e -> [| e; Read |]) evs))
  in
  check_same "read after every event" ~budget:1_000_000 ~interp_width:2.8
    interleaved

let scenario_budget_boundary () =
  (* budget 10: the bundle that takes insns from 9 to 12 must raise, and
     the counters must retain the full bundle exactly as before *)
  check_same "budget exhaustion mid-stream" ~budget:10 ~interp_width:2.0
    [|
      Emit (Cost.make ~alu:9 ());
      Read;
      Emit (Cost.make ~alu:3 ());
      Emit (Cost.make ~alu:100 ());
    |];
  (* landing exactly ON the budget does not raise (only crossing it) *)
  check_same "budget exact boundary" ~budget:10 ~interp_width:2.0
    [| Emit (Cost.make ~alu:10 ()); Read; Branch (1, true) |];
  (* exhaustion inside an emit_static block: partial charges retained *)
  let costs = Array.init 8 (fun i -> Cost.make ~alu:(i + 1) ()) in
  check_same "budget inside emit_static" ~budget:12 ~interp_width:2.0
    [| Emit_block (costs, 0, 8) |]

let scenario_emit_static_equivalence () =
  (* emit_static over a slice == the equivalent per-element emit calls,
     engine vs engine *)
  let costs =
    [|
      Cost.make ~alu:3 ~load:1 ();
      Cost.make ~store:2 ();
      Cost.zero;
      Cost.make ~fpu:4 ~other:1 ();
    |]
  in
  let block = run_engine ~budget:1_000_000 ~interp_width:2.0
      [| Push Phase.Jit; Emit_block (costs, 1, 4); Pop; Read |]
  in
  let seq =
    run_engine ~budget:1_000_000 ~interp_width:2.0
      [|
        Push Phase.Jit;
        Emit costs.(1);
        Emit costs.(2);
        Emit costs.(3);
        Pop;
        Read;
      |]
  in
  Alcotest.(check string)
    "emit_static == emit sequence" (outcome_str seq) (outcome_str block)

let scenario_emit_static_bounds () =
  let eng = Engine.create () in
  let costs = [| Cost.make ~alu:1 () |] in
  let raises lo hi =
    match Engine.emit_static eng costs ~lo ~hi with
    | () -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "lo < 0 raises" true (raises (-1) 0);
  Alcotest.(check bool) "hi > len raises" true (raises 0 2);
  Alcotest.(check bool) "lo > hi raises" true (raises 1 0);
  Engine.emit_static eng costs ~lo:0 ~hi:0;
  Engine.emit_static eng costs ~lo:1 ~hi:1;
  Alcotest.(check int) "empty slices charge nothing" 0 (Engine.total_insns eng)

let scenario_listener_order () =
  (* add_listener's growth buffer must deliver newest-first, like the
     prepend semantics it replaced, across the initial-capacity boundary *)
  let eng = Engine.create () in
  let log = ref [] in
  for k = 1 to 7 do
    Engine.add_listener eng (fun ~insns:_ _ -> log := k :: !log)
  done;
  Engine.annot eng Annot.Dispatch_tick;
  Alcotest.(check (list int))
    "newest-first delivery, all 7 listeners" [ 7; 6; 5; 4; 3; 2; 1 ]
    (List.rev !log)

let scenario_flush_stats () =
  let eng = Engine.create () in
  Alcotest.(check int) "no bundles yet" 0 (Engine.fast_path_bundles eng);
  Engine.emit eng (Cost.make ~alu:2 ());
  Engine.emit eng (Cost.make ~alu:1 ());
  Alcotest.(check int) "two bundles charged" 2 (Engine.fast_path_bundles eng);
  let flushes_before = Engine.charge_flushes eng in
  ignore (Counters.total (Engine.counters eng));
  let flushes_after = Engine.charge_flushes eng in
  Alcotest.(check bool)
    "query flushed the staged state" true
    (flushes_after >= 1 && flushes_after >= flushes_before);
  (* a clean flush (nothing staged) does not count *)
  ignore (Counters.total (Engine.counters eng));
  Alcotest.(check int)
    "idempotent flush not recounted" flushes_after (Engine.charge_flushes eng)

let suite =
  [
    Alcotest.test_case "phase interleaving" `Quick scenario_phases;
    Alcotest.test_case "read after every event" `Quick
      scenario_reads_every_event;
    Alcotest.test_case "budget boundaries" `Quick scenario_budget_boundary;
    Alcotest.test_case "emit_static equivalence" `Quick
      scenario_emit_static_equivalence;
    Alcotest.test_case "emit_static bounds" `Quick scenario_emit_static_bounds;
    Alcotest.test_case "listener order across growth" `Quick
      scenario_listener_order;
    Alcotest.test_case "fast-path stats" `Quick scenario_flush_stats;
    QCheck_alcotest.to_alcotest prop_batched_identical;
  ]
