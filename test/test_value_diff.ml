(** Differential and property tests for the allocation-free value fast
    paths: the immediate-tagged int/bool/nil representation,
    per-context frame pooling, and precomputed string-key hashes.

    The load-bearing test is the frame-pool differential: running the
    same benchmark with [frame_pool] on and off must produce
    BYTE-IDENTICAL simulated results — output, per-phase machine
    counters (cycles compared exactly), GC statistics and JIT log — in
    both VMs and under every JIT configuration.  The fast paths are
    host-side optimizations only; any divergence means a recycled frame
    leaked state into the simulation.  The immediate-identity properties
    pin the physical-equality contract documented in [value.mli], and
    the integral-float hash tests pin the [py_eq]/[py_hash] contract
    that dict lookups (and the precomputed-hash fast path) rely on. *)

module V = Mtj_rt.Value
module Ctx = Mtj_rt.Ctx
module Hstats = Mtj_rt.Hstats
module Apool = Mtj_rt.Apool
module Counters = Mtj_machine.Counters
module Engine = Mtj_machine.Engine
module Config = Mtj_core.Config
module Phase = Mtj_core.Phase
module B = Mtj_benchmarks.Registry
module Jitlog = Mtj_rjit.Jitlog

(* ---------- immediate int/bool/nil representation ---------- *)

let test_immediates () =
  (* EVERY int is an unboxed immediate now: physical equality always
     holds, not just inside a small intern window *)
  List.iter
    (fun i ->
      if not (V.of_int i == V.of_int i) then
        Alcotest.failf "of_int %d not an immediate" i;
      Alcotest.(check bool)
        (Printf.sprintf "%d is_int" i)
        true
        (V.is_int (V.of_int i));
      Alcotest.(check int)
        (Printf.sprintf "%d round-trips" i)
        i
        (V.to_int_unchecked (V.of_int i)))
    [ 0; 1; -1; 7; 255; 256; -257; 65_536; max_int; min_int ];
  (* shared singletons *)
  Alcotest.(check bool) "true_ shared" true (V.of_bool true == V.true_);
  Alcotest.(check bool) "false_ shared" true (V.of_bool false == V.false_);
  Alcotest.(check bool) "nil is nil" true (V.is_nil V.nil);
  Alcotest.(check bool) "true_ is bool" true (V.is_bool V.true_);
  Alcotest.(check bool) "nil not int" false (V.is_int V.nil);
  Alcotest.(check bool) "true_ not int" false (V.is_int V.true_);
  (* immediates never alias the boxed kinds *)
  let z = V.of_int 0 and o = V.of_int 1 in
  Alcotest.(check bool) "0 <> nil" false (V.is_nil z);
  Alcotest.(check bool) "0 <> false" false (V.is_bool z);
  Alcotest.(check bool) "1 <> true" false (V.is_bool o)

let prop_of_int =
  QCheck.Test.make ~name:"of_int views as Int for every int" ~count:2000
    (QCheck.make
       QCheck.Gen.(oneof [ int_range (-5000) 5000; int ]))
    (fun i ->
      let v = V.of_int i in
      (match V.view v with V.Int j -> j = i | _ -> false)
      && V.py_eq v (V.of_int i)
      && V.py_hash v = V.py_hash (V.of_int i)
      && V.of_int i == V.of_int i)

(* ---------- integral-float hash/equality contract ---------- *)

(* regression for the 1e15/1e16 threshold mismatch: integral floats in
   [1e15, 1e16) used to hash differently from their equal ints, so a
   dict keyed by 2e15 could not be probed with 2.0e15 *)
let test_float_hash_window () =
  List.iter
    (fun i ->
      let f = float_of_int i in
      Alcotest.(check bool)
        (Printf.sprintf "py_eq %d its float twin" i)
        true
        (V.py_eq (V.of_int i) (V.of_float f));
      Alcotest.(check int)
        (Printf.sprintf "py_hash %d = py_hash %g" i f)
        (V.py_hash (V.of_int i))
        (V.py_hash (V.of_float f)))
    [
      0; 1; -1; 42;
      999_999_999_999_999;           (* just below 1e15 *)
      1_000_000_000_000_000;         (* the old broken threshold *)
      1_000_000_000_000_001;
      3_000_000_000_000_000;         (* inside the historical window *)
      9_999_999_999_999_998;         (* just below 1e16 *)
      -3_000_000_000_000_000;
    ]

let prop_int_float_hash =
  (* |i| <= 9e15 < 2^53, so float_of_int is exact and py_eq holds;
     the hash must then agree — including across [1e15, 1e16) *)
  QCheck.Test.make ~name:"py_eq (Int i) (Float f) implies equal hashes"
    ~count:2000
    (QCheck.make
       QCheck.Gen.(
         oneof
           [
             int_range (-5000) 5000;
             int_range (-9_000_000_000_000_000) 9_000_000_000_000_000;
             int_range 900_000_000_000_000 9_000_000_000_000_000;
           ]))
    (fun i ->
      let f = float_of_int i in
      V.py_eq (V.of_int i) (V.of_float f)
      && V.py_hash (V.of_int i) = V.py_hash (V.of_float f))

(* ---------- array-pool reuse contract ---------- *)

let test_apool_reuse () =
  let stats = Hstats.create () in
  let pool = Apool.create ~enabled:true ~stats V.nil in
  let a = Apool.acquire pool 8 in
  a.(0) <- V.of_int 7;
  a.(7) <- V.of_str "x";
  Apool.release pool a;
  let b = Apool.acquire pool 8 in
  Alcotest.(check bool) "same array recycled" true (a == b);
  Alcotest.(check int) "reuse counted" 1 stats.Hstats.frame_pool_reuses;
  (* release refilled with the default: indistinguishable from fresh *)
  Array.iteri
    (fun i v ->
      if not (V.is_nil v) then Alcotest.failf "slot %d not cleared" i)
    b;
  (* different length = different bucket *)
  let c = Apool.acquire pool 9 in
  Alcotest.(check bool) "no cross-length reuse" false (b == c);
  Alcotest.(check int) "no extra reuse counted" 1
    stats.Hstats.frame_pool_reuses;
  (* oversize arrays are never pooled *)
  let big = Apool.acquire pool 1000 in
  Apool.release pool big;
  let big' = Apool.acquire pool 1000 in
  Alcotest.(check bool) "oversize not pooled" false (big == big');
  (* a disabled pool is plain allocation *)
  let off = Apool.create ~enabled:false ~stats:(Hstats.create ()) V.nil in
  let d = Apool.acquire off 8 in
  Apool.release off d;
  let d' = Apool.acquire off 8 in
  Alcotest.(check bool) "disabled pool never reuses" false (d == d')

(* ---------- precomputed key hashes ---------- *)

let test_khash_pylite () =
  let code =
    Mtj_pylite.Vm.compile
      "a = \"alpha\"\nb = \"beta\"\nprint(a + b)\nprint(\"alpha\")\n"
  in
  let hs = Mtj_pylite.Bytecode.str_const_khashes code in
  Alcotest.(check bool) "string constants found" true (List.length hs >= 3);
  List.iter
    (fun (s, h) ->
      (* the hash hoisted at translate time is exactly what a dict probe
         would recompute from the key *)
      Alcotest.(check int) ("py_hash " ^ s) (V.py_hash (V.of_str s)) h;
      Alcotest.(check int) ("str_hash " ^ s) (V.str_hash s) h)
    hs

(* the hoisted hashes must actually be USED: a run whose hot loop
   probes a dict through a constant string key ticks [dict_hash_skips]
   on the live interpreter path (threaded translator passes the
   translate-time hash into the [_h] probe entry points) *)
let test_khash_live () =
  let vm = Mtj_pylite.Vm.create ~config:Config.default () in
  let src =
    "d = {}\nd[\"alpha\"] = 0\ni = 0\nwhile i < 200:\n"
    ^ "    d[\"alpha\"] = d[\"alpha\"] + 1\n    i = i + 1\nprint(d[\"alpha\"])\n"
  in
  (match Mtj_pylite.Vm.run_source vm src with
  | Mtj_rjit.Driver.Completed _ -> ()
  | _ -> Alcotest.fail "dict-probe program did not complete");
  Alcotest.(check string) "program output" "200\n" (Mtj_pylite.Vm.output vm);
  let h = Ctx.hstats (Mtj_pylite.Vm.rtc vm) in
  Alcotest.(check bool)
    "constant-key probes skipped rehashing" true
    (h.Mtj_rt.Hstats.dict_hash_skips > 0)

let test_khash_rklite () =
  let code =
    Mtj_rklite.Kvm.compile "(display \"alpha\") (display \"beta\")"
  in
  let hs = Mtj_rklite.Kbytecode.str_const_khashes code in
  Alcotest.(check bool) "string constants found" true (List.length hs >= 2);
  List.iter
    (fun (s, h) ->
      Alcotest.(check int) ("py_hash " ^ s) (V.py_hash (V.of_str s)) h)
    hs

(* ---------- frame-pool on/off differential ---------- *)

let snap_str (s : Counters.snapshot) =
  Printf.sprintf "i=%d c=%.17g b=%d bm=%d l=%d s=%d cm=%d" s.Counters.insns
    s.Counters.cycles s.Counters.branches s.Counters.branch_misses
    s.Counters.loads s.Counters.stores s.Counters.cache_misses

(* everything the simulation exposes about a run, EXCLUDING the host
   fast-path counters (those legitimately differ between pool modes) *)
let observe ~status ~output ~engine ~gc ~jitlog =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "status=%s\n" status);
  let counters = Engine.counters engine in
  List.iter
    (fun p ->
      let s = Counters.phase counters p in
      if s.Counters.insns <> 0 then
        Buffer.add_string buf
          (Printf.sprintf "%s: %s\n" (Phase.name p) (snap_str s)))
    Phase.all;
  Buffer.add_string buf ("total: " ^ snap_str (Counters.total counters) ^ "\n");
  let g : Mtj_rt.Gc_sim.stats = gc in
  Buffer.add_string buf
    (Printf.sprintf "gc: minor=%d major=%d objs=%d words=%d promoted=%d freed=%d\n"
       g.Mtj_rt.Gc_sim.minor_collections g.Mtj_rt.Gc_sim.major_collections
       g.Mtj_rt.Gc_sim.allocated_objects g.Mtj_rt.Gc_sim.allocated_words
       g.Mtj_rt.Gc_sim.promoted_objects g.Mtj_rt.Gc_sim.freed_objects);
  let (j : Jitlog.t) = jitlog in
  Buffer.add_string buf
    (Printf.sprintf "jit: traces=%d aborts=%d deopts=%d bridges=%d trans=%d\n"
       (List.length j.Jitlog.traces) j.Jitlog.aborts j.Jitlog.deopts
       j.Jitlog.bridges_attached j.Jitlog.translations);
  Buffer.add_string buf ("out=" ^ output);
  Buffer.contents buf

let status_of = function
  | Mtj_rjit.Driver.Completed _ -> "ok"
  | Mtj_rjit.Driver.Budget_exceeded -> "budget"
  | Mtj_rjit.Driver.Runtime_error e -> "failed: " ^ e

(* run a registry benchmark; returns the digest and the host fast-path
   counters (reported separately, not part of the digest) *)
let run_py ~config name =
  let b = B.find_exn ~lang:B.Py name in
  let vm = Mtj_pylite.Vm.create ~config () in
  let outcome = Mtj_pylite.Vm.run_source vm b.B.source in
  ( observe ~status:(status_of outcome)
      ~output:(Mtj_pylite.Vm.output vm)
      ~engine:(Mtj_pylite.Vm.engine vm)
      ~gc:(Mtj_rt.Gc_sim.stats (Ctx.gc (Mtj_pylite.Vm.rtc vm)))
      ~jitlog:(Mtj_pylite.Vm.jitlog vm),
    Ctx.hstats (Mtj_pylite.Vm.rtc vm) )

let run_rk ~config name =
  let b = B.find_exn ~lang:B.Rk name in
  let vm = Mtj_rklite.Kvm.create ~config () in
  let outcome = Mtj_rklite.Kvm.run_source vm b.B.source in
  ( observe ~status:(status_of outcome)
      ~output:(Mtj_rklite.Kvm.output vm)
      ~engine:(Mtj_rklite.Kvm.engine vm)
      ~gc:(Mtj_rt.Gc_sim.stats (Ctx.gc (Mtj_rklite.Kvm.rtc vm)))
      ~jitlog:(Mtj_rklite.Kvm.jitlog vm),
    Ctx.hstats (Mtj_rklite.Kvm.rtc vm) )

let check_pool_invariant ~label ~bench run base_config =
  let on = { base_config with Config.frame_pool = true } in
  let off = { base_config with Config.frame_pool = false } in
  let d_on, h_on = run ~config:on bench in
  let d_off, h_off = run ~config:off bench in
  Alcotest.(check string)
    (label ^ ": pool off = pool on") d_off d_on;
  (* liveness: the pool really recycled frames, and only when enabled *)
  Alcotest.(check bool)
    (label ^ ": pool-on run reused frames") true
    (h_on.Hstats.frame_pool_reuses > 0);
  Alcotest.(check int)
    (label ^ ": pool-off run reused nothing") 0
    h_off.Hstats.frame_pool_reuses;
  Alcotest.(check bool)
    (label ^ ": immediate fast path live in both modes") true
    (h_on.Hstats.imm_fast_path_hits > 0
    && h_off.Hstats.imm_fast_path_hits > 0);
  (* counter invariant: every typed op went one way or the other *)
  List.iter
    (fun (m, h) ->
      Alcotest.(check int)
        (label ^ ": imm + boxed = typed total (" ^ m ^ ")")
        h.Hstats.typed_ops_total
        (h.Hstats.imm_fast_path_hits + h.Hstats.boxed_slow_path_hits))
    [ ("on", h_on); ("off", h_off) ]

let budgeted base = Config.with_budget 2_000_000 base

let test_pool_diff_py_jit () =
  check_pool_invariant ~label:"binarytrees(py,jit)" ~bench:"binarytrees"
    run_py (budgeted Config.default)

let test_pool_diff_py_nojit () =
  check_pool_invariant ~label:"binarytrees(py,nojit)" ~bench:"binarytrees"
    run_py (budgeted Config.no_jit)

let test_pool_diff_py_2tier () =
  check_pool_invariant ~label:"binarytrees(py,2tier)" ~bench:"binarytrees"
    run_py (budgeted Config.two_tier)

let test_pool_diff_rk_jit () =
  (* rklite: exercises the tail-call release path in both dispatch tiers *)
  check_pool_invariant ~label:"binarytrees(rk,jit)" ~bench:"binarytrees"
    run_rk (budgeted Config.default)

let suite =
  [
    Alcotest.test_case "immediate representation identities" `Quick
      test_immediates;
    QCheck_alcotest.to_alcotest prop_of_int;
    Alcotest.test_case "integral-float hash window" `Quick
      test_float_hash_window;
    QCheck_alcotest.to_alcotest prop_int_float_hash;
    Alcotest.test_case "array pool reuse contract" `Quick test_apool_reuse;
    Alcotest.test_case "pylite precomputed key hashes" `Quick
      test_khash_pylite;
    Alcotest.test_case "constant-key probes skip rehash live" `Quick
      test_khash_live;
    Alcotest.test_case "rklite precomputed key hashes" `Quick
      test_khash_rklite;
    Alcotest.test_case "pool diff: py jit" `Quick test_pool_diff_py_jit;
    Alcotest.test_case "pool diff: py nojit" `Quick test_pool_diff_py_nojit;
    Alcotest.test_case "pool diff: py two-tier" `Quick
      test_pool_diff_py_2tier;
    Alcotest.test_case "pool diff: rk jit" `Quick test_pool_diff_rk_jit;
  ]
