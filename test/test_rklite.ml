(** rklite language tests, interpreter vs eager JIT. *)

module V = Mtj_rklite.Kvm
module C = Mtj_core.Config

let eager_jit =
  {
    C.default with
    C.jit_threshold = 7;
    bridge_threshold = 3;
    insn_budget = 50_000_000;
  }

let run_with config src =
  let outcome, vm = V.run ~config src in
  match outcome with
  | Mtj_rjit.Driver.Completed _ -> V.output vm
  | Mtj_rjit.Driver.Budget_exceeded -> Alcotest.fail "budget exceeded"
  | Mtj_rjit.Driver.Runtime_error e -> Alcotest.failf "runtime error: %s" e

let check_program name ?expect src () =
  let interp = run_with { C.no_jit with C.insn_budget = 50_000_000 } src in
  let jit = run_with eager_jit src in
  Alcotest.(check string) (name ^ ": interp vs jit") interp jit;
  match expect with
  | Some e -> Alcotest.(check string) (name ^ ": expected") e interp
  | None -> ()

let t name ?expect src =
  Alcotest.test_case name `Quick (check_program name ?expect src)

let suite =
  [
    t "arithmetic" ~expect:"10\n-1\n24\n3\n1\n2.5\n"
      {|
(display (+ 1 2 3 4)) (newline)
(display (- 1 2)) (newline)
(display (* 2 3 4)) (newline)
(display (quotient 7 2)) (newline)
(display (remainder 7 2)) (newline)
(display (/ 5 2)) (newline)
|};
    t "comparisons" ~expect:"#t\n#f\n#t\n#t\n"
      (* booleans print as Python-style in the shared runtime, so use
         predicates to normalize *)
      {|
(define (b v) (if v "#t" "#f"))
(display (b (< 1 2))) (newline)
(display (b (> 1 2))) (newline)
(display (b (= 3 3))) (newline)
(display (b (<= 1 1 2))) (newline)
|};
    t "named let loop" ~expect:"5050\n"
      {|
(display (let loop ((i 1) (s 0))
  (if (> i 100) s (loop (+ i 1) (+ s i)))))
(newline)
|};
    t "define function with self recursion" ~expect:"3628800\n"
      {|
(define (fact n)
  (if (<= n 1) 1 (* n (fact (- n 1)))))
(display (fact 10)) (newline)
|};
    t "tail-recursive loop via define" ~expect:"500500\n"
      {|
(define (go i s)
  (if (> i 1000) s (go (+ i 1) (+ s i))))
(display (go 1 0)) (newline)
|};
    t "mutual tail recursion" ~expect:"1\n0\n"
      {|
(define (even? n) (if (= n 0) 1 (odd? (- n 1))))
(define (odd? n) (if (= n 0) 0 (even? (- n 1))))
(display (even? 1000)) (newline)
(display (even? 1001)) (newline)
|};
    t "pairs" ~expect:"1\n2\n99\n"
      {|
(define p (cons 1 2))
(display (car p)) (newline)
(display (cdr p)) (newline)
(set-car! p 99)
(display (car p)) (newline)
|};
    t "list traversal" ~expect:"15\n"
      {|
(define (sum l) (if (null? l) 0 (+ (car l) (sum (cdr l)))))
(display (sum (list 1 2 3 4 5))) (newline)
|};
    t "vectors" ~expect:"3\n0\n42\n"
      {|
(define v (make-vector 3 0))
(display (vector-length v)) (newline)
(display (vector-ref v 1)) (newline)
(vector-set! v 1 42)
(display (vector-ref v 1)) (newline)
|};
    t "closures capture" ~expect:"8\n11\n"
      {|
(define (make-adder k) (lambda (x) (+ x k)))
(define add5 (make-adder 5))
(define add8 (make-adder 8))
(display (add5 3)) (newline)
(display (add8 3)) (newline)
|};
    t "closure over mutable state" ~expect:"1\n2\n3\n"
      {|
(define (make-counter)
  (let ((n 0))
    (lambda () (set! n (+ n 1)) n)))
(define c (make-counter))
(display (c)) (newline)
(display (c)) (newline)
(display (c)) (newline)
|};
    t "let and let*" ~expect:"7\n12\n"
      {|
(display (let ((a 3) (b 4)) (+ a b))) (newline)
(display (let* ((a 3) (b (* a 3))) (+ a b))) (newline)
|};
    t "letrec" ~expect:"55\n"
      {|
(display
  (letrec ((fib (lambda (n)
                  (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))))
    (fib 10)))
(newline)
|};
    t "cond and when" ~expect:"mid\nyes\n"
      {|
(define (classify x)
  (cond ((< x 0) "neg")
        ((< x 10) "mid")
        (else "big")))
(display (classify 5)) (newline)
(when (= 1 1) (display "yes") (newline))
|};
    t "and or" ~expect:"3\n1\n"
      {|
(display (and 1 2 3)) (newline)
(display (or 1 2)) (newline)
|};
    t "strings" ~expect:"5\nab-cd\n42\n"
      {|
(display (string-length "hello")) (newline)
(display (string-append "ab" "-" "cd")) (newline)
(display (number->string 42)) (newline)
|};
    t "floats" ~expect:"3.0\n8.0\n2.0\n"
      {|
(display (sqrt 9.0)) (newline)
(display (expt 2.0 3.0)) (newline)
(display (exact->inexact 2)) (newline)
|};
    t "bignums" ~expect:"2432902008176640000\n265252859812191058636308480000000\n"
      {|
(define (fact n) (if (<= n 1) 1 (* n (fact (- n 1)))))
(display (fact 20)) (newline)
(display (fact 30)) (newline)
|};
    t "quote" ~expect:"sym\nNone\n"
      {|
(display 'sym) (newline)
(display '()) (newline)
|};
    t "hot vector loop" ~expect:"328350\n"
      {|
(define v (make-vector 100 0))
(let fill ((i 0))
  (when (< i 100)
    (vector-set! v i (* i i))
    (fill (+ i 1))))
(display
  (let sum ((i 0) (s 0))
    (if (< i 100) (sum (+ i 1) (+ s (vector-ref v i))) s)))
(newline)
|};
    t "allocation in hot loop (cons)" ~expect:"4950\n"
      {|
(define (build n)
  (let loop ((i 0) (acc '()))
    (if (< i n) (loop (+ i 1) (cons i acc)) acc)))
(define (sum l)
  (let loop ((l l) (s 0))
    (if (null? l) s (loop (cdr l) (+ s (car l))))))
(display (sum (build 100))) (newline)
|};
    t "type-polymorphic loop"
      {|
(define (run n)
  (let loop ((i 0) (s 0))
    (if (>= i n)
        s
        (loop (+ i 1)
              (if (= (modulo i 2) 0)
                  (+ s i)
                  (+ s 1))))))
(display (run 200)) (newline)
|};
  ]
