The mtj CLI drives the VMs from the shell. Its output is byte-stable
because the whole stack is a deterministic simulation.

List a few registered benchmarks:

  $ ../../bin/mtj.exe list | head -4
  name                 lang suite  regime
  ------------------------------------------------------------------------------------------
  richards             py   pypy   branchy method dispatch; guards dominate
  crypto_pyaes         py   pypy   int ops + list indexing; strong JIT win

Execute a pylite source file:

  $ cat > hot.py <<'PY'
  > def f(n):
  >     s = 0
  >     for i in range(n):
  >         s = s + i
  >     return s
  > print(f(2000))
  > PY
  $ ../../bin/mtj.exe exec hot.py
  1999000
  [ok; 116781 simulated instructions]

The JIT can be disabled, and a two-tier policy selected; the program
output is identical either way:

  $ ../../bin/mtj.exe exec hot.py --no-jit 2>/dev/null | head -1
  1999000
  $ ../../bin/mtj.exe exec hot.py --tiered 2>/dev/null | head -1
  1999000

The tier policy is a config axis of its own.  Program output never
moves, but the policy changes simulated behavior: the baseline tier
compiles at a lower threshold, so the run reaches compiled code — and
the finish line — in fewer simulated instructions, and the adaptive
policy then promotes the hot loop to the optimizing tier:

  $ ../../bin/mtj.exe exec hot.py --tier-policy baseline
  1999000
  [ok; 95917 simulated instructions]
  $ ../../bin/mtj.exe exec hot.py --tier-policy adaptive
  1999000
  [ok; 74580 simulated instructions]

The metrics export carries the multi-tier accounting, and the
validator checks its invariants (tier compiles partition the traces,
per-tier residency reconciles with the per-trace rows):

  $ ../../bin/mtj.exe trace binarytrees --budget 2000000 \
  >   --tier-policy adaptive --metrics-out m6.json
  [metrics written to m6.json]
  $ ../validate_obs.exe metrics m6.json
  metrics OK: 1 run record
  $ grep -o '"tier1_compiles": [0-9]*' m6.json
  "tier1_compiles": 5

A run can be recorded through the observability sink and exported as a
Chrome trace-event timeline (Perfetto-loadable) plus a versioned
metrics document; both must satisfy the schema validator (balanced
B/E spans, phases + jit-traces + gc tracks, counter tracks, per-phase
counters consistent with the totals):

  $ ../../bin/mtj.exe trace binarytrees --budget 2000000 \
  >   --trace-out t.json --metrics-out m.json
  [trace written to t.json]
  [metrics written to m.json]
  $ ../validate_obs.exe trace t.json
  trace OK: balanced spans on 3 tracks, 4 counter tracks
  $ ../validate_obs.exe metrics m.json
  metrics OK: 1 run record

The validator rejects a corrupted artifact:

  $ sed 's|mtj-trace/1|mtj-trace/9|' t.json > broken.json
  $ ../validate_obs.exe trace broken.json
  broken.json: invalid trace: schema "mtj-trace/9", expected "mtj-trace/1"
  [1]

Scheme sources run on the rklite VM:

  $ cat > loop.scm <<'SCM'
  > (define (work n)
  >   (let loop ((i 0) (acc 0))
  >     (if (= i n) acc (loop (+ i 1) (+ acc i)))))
  > (display (work 2000))
  > (newline)
  > SCM
  $ ../../bin/mtj.exe exec loop.scm 2>/dev/null | head -1
  1999000
