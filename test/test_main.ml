let () =
  Alcotest.run "mtj"
    [
      ("core", Test_core.suite);
      ("machine", Test_machine.suite);
      ("rbigint", Test_rbigint.suite);
      ("rt", Test_rt.suite);
      ("gc", Test_gc.suite);
      ("rt-model", Test_rt_model.suite);
      ("pylite", Test_pylite.suite);
      ("rklite", Test_rklite.suite);
      ("jit-equivalence", Test_jit_equiv.suite);
      ("jit-equivalence-rk", Test_jit_equiv_rk.suite);
      ("pintool", Test_pintool.suite);
      ("annot-stream", Test_annot_stream.suite);
      ("jit-machinery", Test_jit_machinery.suite);
      ("jit-optimizer", Test_opt.suite);
      ("jit-executor", Test_executor.suite);
      ("jit-opt-property", Test_opt_prop.suite);
      ("jit-threaded-diff", Test_threaded_diff.suite);
      ("machine-property", Test_machine_prop.suite);
      ("charge-diff", Test_charge_diff.suite);
      ("dispatch-diff", Test_dispatch_diff.suite);
      ("tier-diff", Test_tier_diff.suite);
      ("obs", Test_obs.suite);
      ("lang-internals", Test_lang_internals.suite);
      ("error-paths", Test_errors.suite);
      ("pool", Test_pool.suite);
      ("serve-diff", Test_serve_diff.suite);
      ("value-diff", Test_value_diff.suite);
      ("value-repr-diff", Test_value_repr_diff.suite);
      ("integration", Test_integration.suite);
    ]
