(** Differential testing of the JIT on the Scheme-subset VM: randomly
    generated rklite programs must print exactly the same output under
    the plain interpreter, the full JIT, each pass-ablated JIT, and the
    two-tier JIT. Complements the pylite generator with proper tail
    calls, closures, vectors and cons pairs — the code shapes rklite
    compiles differently (self-tail-jump loops instead of FOR_RANGE). *)

module V = Mtj_rklite.Kvm
module C = Mtj_core.Config

type rng = { mutable st : int }

let next r =
  let x = r.st in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  r.st <- x land max_int;
  r.st

let rand r n = if n <= 0 then 0 else next r mod n
let pick r l = List.nth l (rand r (List.length l))

let vars = [ "a"; "b"; "i" ]

(* integer expression over the loop variables; modulo keeps everything
   bounded and division-free (no divide-by-zero divergence) *)
let rec gen_expr r depth =
  if depth = 0 || rand r 3 = 0 then
    match rand r 3 with
    | 0 -> string_of_int (rand r 100)
    | 1 -> pick r vars
    | _ -> Printf.sprintf "(modulo %s %d)" (pick r vars) (2 + rand r 9)
  else
    let op = pick r [ "+"; "-"; "*" ] in
    let wrap e =
      (* keep products bounded *)
      if op = "*" then Printf.sprintf "(modulo %s 97)" e else e
    in
    Printf.sprintf "(%s %s %s)" op
      (wrap (gen_expr r (depth - 1)))
      (wrap (gen_expr r (depth - 1)))

let gen_cond r =
  Printf.sprintf "(%s %s %s)"
    (pick r [ "<"; "<="; ">"; ">="; "=" ])
    (pick r vars) (gen_expr r 1)

(* one step of the accumulator: a branchy, vector-touching expression *)
let gen_step r =
  match rand r 5 with
  | 0 -> gen_expr r 2
  | 1 ->
      Printf.sprintf "(if %s %s %s)" (gen_cond r) (gen_expr r 2)
        (gen_expr r 2)
  | 2 ->
      let k = rand r 8 in
      Printf.sprintf
        "(begin (vector-set! v %d (modulo (+ (vector-ref v %d) %s) 256)) \
         (vector-ref v %d))"
        k k (gen_expr r 1) k
  | 3 ->
      (* a cons pair built and torn down *)
      Printf.sprintf "(car (cons %s %s))" (gen_expr r 1) (gen_expr r 1)
  | _ ->
      (* call a small helper closure *)
      Printf.sprintf "(f %s)" (gen_expr r 1)

let gen_program seed =
  let r = { st = (seed * 2654435761) lor 1 } in
  let helper_body = gen_expr r 2 in
  let steps = List.init (1 + rand r 3) (fun _ -> gen_step r) in
  let acc_update =
    List.fold_left
      (fun acc s -> Printf.sprintf "(modulo (+ %s %s) 1000003)" acc s)
      "acc" steps
  in
  Printf.sprintf
    {|
(define v (make-vector 8 3))
(define (f x) (modulo %s 1009))
(define (work n)
  (let loop ((i 0) (a 1) (b 2) (acc 0))
    (if (= i n) acc
        (let ((a (modulo (+ a i) 97))
              (b (modulo (+ b a) 89)))
          (loop (+ i 1) a b %s)))))
(display (work 150))
(newline)
(display (work 43))
(newline)
|}
    helper_body acc_update

let budget = 80_000_000

let configs =
  [
    ("interp", { C.no_jit with C.insn_budget = budget });
    ( "jit",
      { C.default with C.jit_threshold = 9; bridge_threshold = 3;
        insn_budget = budget } );
    ( "jit-noopt",
      { C.default with C.jit_threshold = 9; bridge_threshold = 3;
        insn_budget = budget; opt_fold = false; opt_guard_elim = false;
        opt_forward = false; opt_virtuals = false; opt_peel = false } );
    ( "jit-novirtuals",
      { C.default with C.jit_threshold = 9; bridge_threshold = 3;
        insn_budget = budget; opt_virtuals = false } );
    ( "jit-2tier",
      { C.default with C.jit_threshold = 9; bridge_threshold = 3;
        insn_budget = budget; tier_policy = C.Adaptive; tier2_threshold = 5 } );
  ]

let run_one config src =
  let outcome, vm = V.run ~config src in
  match outcome with
  | Mtj_rjit.Driver.Completed _ -> V.output vm
  | Mtj_rjit.Driver.Budget_exceeded -> "<budget>"
  | Mtj_rjit.Driver.Runtime_error e -> "<error: " ^ e ^ ">"

let check_seed seed () =
  let src = gen_program seed in
  let results = List.map (fun (name, c) -> (name, run_one c src)) configs in
  let _, reference = List.hd results in
  List.iter
    (fun (name, out) ->
      if out <> reference then
        Alcotest.failf "seed %d: %s diverged\nprogram:\n%s\n%s=%S\ninterp=%S"
          seed name src name out reference)
    results

(* the generator must actually exercise the JIT: the hot named-let loop
   in a generated program compiles at least one trace *)
let test_generated_programs_compile () =
  let src = gen_program 2000 in
  let config = List.assoc "jit" configs in
  let vm = V.create ~config () in
  (match V.run_source vm src with
  | Mtj_rjit.Driver.Completed _ -> ()
  | _ -> Alcotest.fail "run failed");
  Alcotest.(check bool) "traces compiled" true
    (Mtj_rjit.Jitlog.num_traces (V.jitlog vm) >= 1);
  Alcotest.(check bool) "trace ran hot" true
    (List.exists
       (fun (tr : Mtj_rjit.Ir.trace) -> tr.Mtj_rjit.Ir.exec_count > 100)
       (Mtj_rjit.Jitlog.traces (V.jitlog vm)))

let prop_random_programs =
  QCheck.Test.make ~name:"random scheme programs: interp = all jits"
    ~count:25
    (QCheck.make QCheck.Gen.(int_range 1 100000))
    (fun seed ->
      let src = gen_program seed in
      let results = List.map (fun (_, c) -> run_one c src) configs in
      List.for_all (fun o -> o = List.hd results) results)

let suite =
  List.init 10 (fun i ->
      Alcotest.test_case
        (Printf.sprintf "generated scheme program %d" i)
        `Quick
        (check_seed (2000 + (i * 7919))))
  @ [
      Alcotest.test_case "generated programs compile" `Quick
        test_generated_programs_compile;
      QCheck_alcotest.to_alcotest prop_random_programs;
    ]
