(** Direct unit tests of the trace optimizer on hand-constructed IR, and
    of the pure-op evaluator. *)

open Mtj_rjit
module V = Mtj_rt.Value

let cfg = Mtj_core.Config.default
let nopeel = { cfg with Mtj_core.Config.opt_peel = false }

let vi i = Ir.Const (V.of_int i)

let mk ?(result = -1) opcode args = { Ir.opcode; args; result }

let empty_resume = { Ir.frames = []; r_virtuals = [||] }

let guard ?(gkind = Ir.G_true) args =
  {
    Ir.opcode =
      Ir.Guard
        {
          Ir.guard_id = 100_000 + Random.int 10_000;
          gkind;
          resume = empty_resume;
          fail_count = 0;
          bridge = None;
          bridgeable = true;
        };
    args;
    result = -1;
  }

(* a one-frame resume keeping the given registers alive *)
let resume_of regs =
  {
    Ir.frames =
      [
        {
          Ir.snap_code = 0;
          snap_pc = 0;
          snap_locals = Array.of_list (List.map (fun r -> Ir.S_reg r) regs);
          snap_stack = [||];
          snap_discard = false;
        };
      ];
    r_virtuals = [||];
  }

let jump args = mk Ir.Jump args

let optimize ?(config = nopeel) ?(entry = 2) ops =
  let out, _, _ =
    Opt.optimize config ~kind:`Loop (Array.of_list ops) ~entry_slots:entry
  in
  Array.to_list out

let count pred ops = List.length (List.filter pred ops)
let is_guard (op : Ir.op) = match op.Ir.opcode with Ir.Guard _ -> true | _ -> false
let opcode_is o (op : Ir.op) = Ir.node_type op.Ir.opcode = o

let test_constant_folding () =
  (* r2 = 2 + 3 must fold; the jump then carries the constant *)
  let ops =
    [ mk ~result:2 Ir.Int_add [| vi 2; vi 3 |];
      jump [| Ir.Reg 2; Ir.Reg 1 |] ]
  in
  let out = optimize ops in
  Alcotest.(check int) "add folded away" 0 (count (opcode_is "int_add") out);
  match (List.hd (List.rev out)).Ir.args.(0) with
  | Ir.Const c when V.is_int c && V.to_int_unchecked c = 5 -> ()
  | _ -> Alcotest.fail "jump arg not folded to 5"

let test_guard_dedup () =
  let g () = guard ~gkind:(Ir.G_class Ir.Ty_int) [| Ir.Reg 0 |] in
  let ops = [ g (); g (); g (); jump [| Ir.Reg 0; Ir.Reg 1 |] ] in
  let out = optimize ops in
  Alcotest.(check int) "one guard survives" 1 (count is_guard out)

let test_overflow_guard_intbounds () =
  (* r2 = r0 mod 100 -> [0,99]; r3 = r2 + 5 cannot overflow *)
  let ops =
    [ mk ~result:2 Ir.Int_mod [| Ir.Reg 0; vi 100 |];
      mk ~result:3 Ir.Int_add [| Ir.Reg 2; vi 5 |];
      guard ~gkind:Ir.G_no_ovf_add [| Ir.Reg 2; vi 5 |];
      jump [| Ir.Reg 3; Ir.Reg 1 |] ]
  in
  let out = optimize ops in
  Alcotest.(check int) "overflow guard removed" 0 (count is_guard out)

let test_overflow_guard_kept_when_unbounded () =
  let ops =
    [ mk ~result:2 Ir.Int_add [| Ir.Reg 0; Ir.Reg 1 |];
      guard ~gkind:Ir.G_no_ovf_add [| Ir.Reg 0; Ir.Reg 1 |];
      jump [| Ir.Reg 2; Ir.Reg 1 |] ]
  in
  let out = optimize ops in
  Alcotest.(check int) "guard kept" 1 (count is_guard out)

let test_heap_forwarding () =
  (* two getfields of the same field with no effects between *)
  let ops =
    [ mk ~result:2 (Ir.Getfield_gc 0) [| Ir.Reg 0 |];
      mk ~result:3 (Ir.Getfield_gc 0) [| Ir.Reg 0 |];
      mk ~result:4 Ir.Int_add [| Ir.Reg 2; Ir.Reg 3 |];
      guard ~gkind:Ir.G_no_ovf_add [| Ir.Reg 2; Ir.Reg 3 |];
      jump [| Ir.Reg 4; Ir.Reg 1 |] ]
  in
  let out = optimize ops in
  Alcotest.(check int) "one load survives" 1
    (count (opcode_is "getfield_gc") out)

let test_forwarding_invalidated_by_call () =
  let rc =
    {
      Ir.aot = Mtj_rt.Aot.register ~name:"test.effectful" ~src:Mtj_rt.Aot.I;
      run = (fun _ _ -> V.nil);
      effectful = true;
    }
  in
  let ops =
    [ mk ~result:2 (Ir.Getfield_gc 0) [| Ir.Reg 0 |];
      mk (Ir.Call_n rc) [| Ir.Reg 0 |];
      mk ~result:3 (Ir.Getfield_gc 0) [| Ir.Reg 0 |];
      mk ~result:4 Ir.Int_add [| Ir.Reg 2; Ir.Reg 3 |];
      guard ~gkind:Ir.G_no_ovf_add [| Ir.Reg 2; Ir.Reg 3 |];
      jump [| Ir.Reg 4; Ir.Reg 1 |] ]
  in
  let out = optimize ops in
  Alcotest.(check int) "both loads survive" 2
    (count (opcode_is "getfield_gc") out)

let test_dce_removes_unused_pure () =
  let ops =
    [ mk ~result:2 Ir.Int_mul [| Ir.Reg 0; Ir.Reg 0 |];  (* unused *)
      mk ~result:3 Ir.Int_add [| Ir.Reg 0; vi 1 |];
      guard ~gkind:Ir.G_no_ovf_add [| Ir.Reg 0; vi 1 |];
      jump [| Ir.Reg 3; Ir.Reg 1 |] ]
  in
  let out = optimize ops in
  Alcotest.(check int) "mul removed" 0 (count (opcode_is "int_mul") out)

let test_dce_respects_resume () =
  (* the pure op's only use is a guard's resume: must be kept *)
  let g =
    {
      Ir.opcode =
        Ir.Guard
          {
            Ir.guard_id = 999_999;
            gkind = Ir.G_true;
            resume = resume_of [ 2 ];
            fail_count = 0;
            bridge = None;
            bridgeable = true;
          };
      args = [| Ir.Reg 1 |];
      result = -1;
    }
  in
  let ops =
    [ mk ~result:2 Ir.Int_mul [| Ir.Reg 0; Ir.Reg 0 |];
      g;
      jump [| Ir.Reg 0; Ir.Reg 1 |] ]
  in
  let out = optimize ops in
  Alcotest.(check int) "mul kept for resume" 1 (count (opcode_is "int_mul") out)

let test_virtuals_removed_when_private () =
  (* a tuple that never escapes: allocation and field reads disappear *)
  let ops =
    [ mk ~result:2 (Ir.New_array 2) [| Ir.Reg 0; Ir.Reg 1 |];
      mk ~result:3 Ir.Getarrayitem_gc [| Ir.Reg 2; vi 0 |];
      mk ~result:4 Ir.Getarrayitem_gc [| Ir.Reg 2; vi 1 |];
      mk ~result:5 Ir.Int_add [| Ir.Reg 3; Ir.Reg 4 |];
      guard ~gkind:Ir.G_no_ovf_add [| Ir.Reg 3; Ir.Reg 4 |];
      jump [| Ir.Reg 5; Ir.Reg 1 |] ]
  in
  let out = optimize ops in
  Alcotest.(check int) "no allocation" 0 (count (opcode_is "new_array") out);
  Alcotest.(check int) "no element loads" 0
    (count (opcode_is "getarrayitem_gc") out)

let test_virtuals_kept_when_escaping () =
  (* stored via jump: the allocation must survive *)
  let ops =
    [ mk ~result:2 (Ir.New_array 2) [| Ir.Reg 0; Ir.Reg 1 |];
      jump [| Ir.Reg 2; Ir.Reg 1 |] ]
  in
  let out = optimize ops in
  Alcotest.(check int) "allocation kept" 1 (count (opcode_is "new_array") out)

let test_virtual_in_resume_materializes () =
  (* a virtual referenced only by a resume becomes S_virtual with a
     descriptor *)
  let g =
    {
      Ir.opcode =
        Ir.Guard
          {
            Ir.guard_id = 999_998;
            gkind = Ir.G_true;
            resume = resume_of [ 2 ];
            fail_count = 0;
            bridge = None;
            bridgeable = true;
          };
      args = [| Ir.Reg 1 |];
      result = -1;
    }
  in
  let ops =
    [ mk ~result:2 (Ir.New_array 2) [| Ir.Reg 0; vi 7 |];
      g;
      jump [| Ir.Reg 0; Ir.Reg 1 |] ]
  in
  let out = optimize ops in
  Alcotest.(check int) "allocation removed" 0 (count (opcode_is "new_array") out);
  let found = ref false in
  List.iter
    (fun (op : Ir.op) ->
      match op.Ir.opcode with
      | Ir.Guard gg ->
          if Array.length gg.Ir.resume.Ir.r_virtuals = 1 then begin
            (match gg.Ir.resume.Ir.r_virtuals.(0) with
            | Ir.V_tuple [| Ir.S_reg 0; Ir.S_const c |]
              when V.is_int c && V.to_int_unchecked c = 7 ->
                found := true
            | _ -> ());
            List.iter
              (fun (f : Ir.frame_snap) ->
                Array.iter
                  (function
                    | Ir.S_virtual 0 -> ()
                    | Ir.S_reg 2 -> Alcotest.fail "resume kept the raw reg"
                    | _ -> ())
                  f.Ir.snap_locals)
              gg.Ir.resume.Ir.frames
          end
      | _ -> ())
    out;
  Alcotest.(check bool) "vdesc captured" true !found

let test_peeling_duplicates () =
  let ops =
    [ guard ~gkind:(Ir.G_class Ir.Ty_int) [| Ir.Reg 0 |];
      mk ~result:2 Ir.Int_add [| Ir.Reg 0; vi 1 |];
      guard ~gkind:Ir.G_no_ovf_add [| Ir.Reg 0; vi 1 |];
      jump [| Ir.Reg 2; Ir.Reg 1 |] ]
  in
  let out, loop_base, loop_start =
    Opt.optimize cfg ~kind:`Loop (Array.of_list ops) ~entry_slots:2
  in
  Alcotest.(check bool) "peeled" true (loop_start > 0 && loop_base > 0);
  (* the type guard survives only in the preamble: the loop part carries
     the Int fact through the back-edge *)
  let loop_part = Array.sub out loop_start (Array.length out - loop_start) in
  Alcotest.(check int) "no class guard in loop" 0
    (count
       (fun op ->
         match op.Ir.opcode with
         | Ir.Guard { gkind = Ir.G_class _; _ } -> true
         | _ -> false)
       (Array.to_list loop_part))

(* --- pure evaluator --- *)

let test_eval_int_ops () =
  Alcotest.(check bool) "add" true (Eval_op.eval Ir.Int_add [| V.of_int 2; V.of_int 3 |] = V.of_int 5);
  Alcotest.(check bool) "mod" true (Eval_op.eval Ir.Int_mod [| V.of_int (-7); V.of_int 3 |] = V.of_int 2);
  Alcotest.(check bool) "lt" true (Eval_op.eval Ir.Int_lt [| V.of_int 1; V.of_int 2 |] = V.of_bool true)

let test_eval_errors () =
  Alcotest.(check bool) "div by zero raises" true
    (try ignore (Eval_op.eval Ir.Int_mod [| V.of_int 1; V.of_int 0 |]); false
     with Division_by_zero -> true);
  Alcotest.(check bool) "str index" true
    (try ignore (Eval_op.eval Ir.Strgetitem [| V.of_str "ab"; V.of_int 9 |]); false
     with Ops_intf.Lang_error _ -> true)

let test_eval_not_pure () =
  Alcotest.check_raises "getfield is impure" Eval_op.Not_pure (fun () ->
      ignore (Eval_op.eval (Ir.Getfield_gc 0) [| V.nil |]))

let test_checked_ops () =
  Alcotest.(check int) "ok" 5 (Eval_op.checked_add 2 3);
  Alcotest.check_raises "overflow" Eval_op.Overflow (fun () ->
      ignore (Eval_op.checked_add max_int 1));
  Alcotest.check_raises "mul overflow" Eval_op.Overflow (fun () ->
      ignore (Eval_op.checked_mul max_int 2))

let suite =
  [
    Alcotest.test_case "constant folding" `Quick test_constant_folding;
    Alcotest.test_case "guard dedup" `Quick test_guard_dedup;
    Alcotest.test_case "intbounds removes overflow guard" `Quick
      test_overflow_guard_intbounds;
    Alcotest.test_case "unbounded overflow guard kept" `Quick
      test_overflow_guard_kept_when_unbounded;
    Alcotest.test_case "heap forwarding" `Quick test_heap_forwarding;
    Alcotest.test_case "forwarding invalidated by call" `Quick
      test_forwarding_invalidated_by_call;
    Alcotest.test_case "dce removes unused pure" `Quick test_dce_removes_unused_pure;
    Alcotest.test_case "dce respects resume" `Quick test_dce_respects_resume;
    Alcotest.test_case "virtuals removed when private" `Quick
      test_virtuals_removed_when_private;
    Alcotest.test_case "virtuals kept when escaping" `Quick
      test_virtuals_kept_when_escaping;
    Alcotest.test_case "virtual captured in resume" `Quick
      test_virtual_in_resume_materializes;
    Alcotest.test_case "peeling hoists type guards" `Quick test_peeling_duplicates;
    Alcotest.test_case "eval int ops" `Quick test_eval_int_ops;
    Alcotest.test_case "eval errors" `Quick test_eval_errors;
    Alcotest.test_case "eval not pure" `Quick test_eval_not_pure;
    Alcotest.test_case "checked ops" `Quick test_checked_ops;
  ]
