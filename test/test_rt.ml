(** Unit + model-based property tests for the runtime object model:
    values, ordered dicts, list strategies, strings, sets, arithmetic. *)

open Mtj_rt
module V = Value
module B = Mtj_rt.Rbigint

let ctx () = Ctx.create ~config:Mtj_core.Config.no_jit ()

let vint i = V.of_int i
let vstr s = V.of_str s

(* --- values --- *)

let test_truthiness () =
  let c = ctx () in
  Alcotest.(check bool) "0" false (V.truthy (vint 0));
  Alcotest.(check bool) "1" true (V.truthy (vint 1));
  Alcotest.(check bool) "''" false (V.truthy (vstr ""));
  Alcotest.(check bool) "'x'" true (V.truthy (vstr "x"));
  Alcotest.(check bool) "nil" false (V.truthy V.nil);
  Alcotest.(check bool) "0.0" false (V.truthy (V.of_float 0.0));
  let empty = Rlist.create c [] in
  Alcotest.(check bool) "[]" false (V.truthy (V.of_obj empty));
  Rlist.append c empty (vint 1);
  Alcotest.(check bool) "[1]" true (V.truthy (V.of_obj empty))

let test_py_eq_numbers () =
  Alcotest.(check bool) "int/float" true (V.py_eq (vint 3) (V.of_float 3.0));
  Alcotest.(check bool) "neq" false (V.py_eq (vint 3) (V.of_float 3.5))

let test_py_eq_tuples () =
  let c = ctx () in
  let t1 = Gc_sim.obj (Ctx.gc c) (V.Tuple [| vint 1; vstr "a" |]) in
  let t2 = Gc_sim.obj (Ctx.gc c) (V.Tuple [| vint 1; vstr "a" |]) in
  let t3 = Gc_sim.obj (Ctx.gc c) (V.Tuple [| vint 2; vstr "a" |]) in
  Alcotest.(check bool) "structural" true (V.py_eq t1 t2);
  Alcotest.(check bool) "different" false (V.py_eq t1 t3)

let test_hash_eq_consistent () =
  let pairs = [ (vint 5, V.of_float 5.0); (vstr "ab", vstr "ab") ] in
  List.iter
    (fun (a, b) ->
      if V.py_eq a b then
        Alcotest.(check int) "hash consistent" (V.py_hash a) (V.py_hash b))
    pairs

let test_repr () =
  Alcotest.(check string) "int" "42" (V.repr (vint 42));
  Alcotest.(check string) "str" "'hi'" (V.repr (vstr "hi"));
  Alcotest.(check string) "none" "None" (V.repr V.nil);
  Alcotest.(check string) "true" "True" (V.repr (V.of_bool true));
  Alcotest.(check string) "float" "2.5" (V.repr (V.of_float 2.5))

(* --- ordered dict vs a model --- *)

let test_dict_basic () =
  let c = ctx () in
  let d = Rdict.create c in
  let o = Gc_sim.alloc (Ctx.gc c) (V.Dict d) in
  Rdict.set c o d (vstr "a") (vint 1);
  Rdict.set c o d (vstr "b") (vint 2);
  Rdict.set c o d (vstr "a") (vint 3);
  Alcotest.(check int) "len" 2 (Rdict.length d);
  Alcotest.(check bool) "get a" true (Rdict.get c d (vstr "a") = Some (vint 3));
  Alcotest.(check bool) "get b" true (Rdict.get c d (vstr "b") = Some (vint 2));
  Alcotest.(check bool) "missing" true (Rdict.get c d (vstr "z") = None)

let test_dict_insertion_order () =
  let c = ctx () in
  let d = Rdict.create c in
  let o = Gc_sim.alloc (Ctx.gc c) (V.Dict d) in
  List.iter (fun k -> Rdict.set c o d (vint k) (vint (k * 10))) [ 5; 3; 9; 1 ];
  Alcotest.(check (list int)) "order" [ 5; 3; 9; 1 ]
    (List.map
       (fun v -> if V.is_int v then V.to_int_unchecked v else -1)
       (Rdict.keys d))

let test_dict_delete () =
  let c = ctx () in
  let d = Rdict.create c in
  let o = Gc_sim.alloc (Ctx.gc c) (V.Dict d) in
  Rdict.set c o d (vstr "x") (vint 1);
  Alcotest.(check bool) "deleted" true (Rdict.delete c d (vstr "x"));
  Alcotest.(check bool) "gone" true (Rdict.get c d (vstr "x") = None);
  Alcotest.(check bool) "again" false (Rdict.delete c d (vstr "x"));
  Alcotest.(check int) "len" 0 (Rdict.length d);
  (* reinsert after tombstone *)
  Rdict.set c o d (vstr "x") (vint 2);
  Alcotest.(check bool) "reinserted" true (Rdict.get c d (vstr "x") = Some (vint 2))

let test_dict_growth () =
  let c = ctx () in
  let d = Rdict.create c in
  let o = Gc_sim.alloc (Ctx.gc c) (V.Dict d) in
  for i = 0 to 499 do
    Rdict.set c o d (vint i) (vint (i * i))
  done;
  Alcotest.(check int) "len" 500 (Rdict.length d);
  for i = 0 to 499 do
    if Rdict.get c d (vint i) <> Some (vint (i * i)) then
      Alcotest.failf "lost key %d" i
  done

(* random op sequence against an association-list model *)
let prop_dict_model =
  QCheck.Test.make ~name:"ordered dict matches model" ~count:200
    QCheck.(list (pair (int_bound 30) (option (int_bound 100))))
    (fun ops ->
      let c = ctx () in
      let d = Rdict.create c in
      let o = Gc_sim.alloc (Ctx.gc c) (V.Dict d) in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (k, v) ->
          match v with
          | Some v ->
              Rdict.set c o d (vint k) (vint v);
              Hashtbl.replace model k v
          | None ->
              let deleted = Rdict.delete c d (vint k) in
              let in_model = Hashtbl.mem model k in
              Hashtbl.remove model k;
              if deleted <> in_model then QCheck.Test.fail_report "delete mismatch")
        ops;
      Hashtbl.length model = Rdict.length d
      && Hashtbl.fold
           (fun k v acc -> acc && Rdict.get c d (vint k) = Some (vint v))
           model true)

(* --- list strategies --- *)

let test_list_int_strategy () =
  let c = ctx () in
  let l = Rlist.create c [ vint 1; vint 2; vint 3 ] in
  Alcotest.(check string) "strategy" "int" (Rlist.strategy_name (Rlist.of_obj l));
  Alcotest.(check bool) "get" true (Rlist.get c l 1 = vint 2)

let test_list_generalizes () =
  let c = ctx () in
  let l = Rlist.create c [ vint 1 ] in
  Rlist.append c l (vstr "x");
  Alcotest.(check string) "generalized" "object"
    (Rlist.strategy_name (Rlist.of_obj l));
  Alcotest.(check bool) "kept int" true (Rlist.get c l 0 = vint 1);
  Alcotest.(check bool) "kept str" true (Rlist.get c l 1 = vstr "x")

let test_list_str_strategy () =
  let c = ctx () in
  let l = Rlist.create c [ vstr "a"; vstr "b" ] in
  Alcotest.(check string) "bytes" "bytes" (Rlist.strategy_name (Rlist.of_obj l))

let test_list_float_strategy () =
  let c = ctx () in
  let l = Rlist.create c [ V.of_float 1.5 ] in
  Alcotest.(check string) "float" "float" (Rlist.strategy_name (Rlist.of_obj l))

let test_list_pop_slice () =
  let c = ctx () in
  let l = Rlist.create c (List.init 10 vint) in
  let v = Rlist.pop c l 0 in
  Alcotest.(check bool) "pop head" true (v = vint 0);
  Alcotest.(check int) "len" 9 (Rlist.length (Rlist.of_obj l));
  let s = Rlist.slice c l 2 5 in
  Alcotest.(check int) "slice len" 3 (Rlist.length (Rlist.of_obj s));
  Alcotest.(check bool) "slice contents" true (Rlist.get c s 0 = vint 3)

let test_list_setslice_find () =
  let c = ctx () in
  let l = Rlist.create c (List.init 6 vint) in
  let src = Rlist.create c [ vint 100; vint 200 ] in
  Rlist.setslice c l 2 4 src;
  Alcotest.(check bool) "setslice" true (Rlist.get c l 2 = vint 100);
  Alcotest.(check int) "find" 3 (Rlist.find c l (vint 200));
  Alcotest.(check int) "find missing" (-1) (Rlist.find c l (vint 999))

let prop_list_model =
  QCheck.Test.make ~name:"list matches model" ~count:200
    QCheck.(list (int_bound 1000))
    (fun xs ->
      let c = ctx () in
      let l = Rlist.create c [] in
      List.iter (fun x -> Rlist.append c l (vint x)) xs;
      let back = Array.to_list (Rlist.to_array (Rlist.of_obj l)) in
      back = List.map vint xs)

(* --- strings --- *)

let test_str_ops () =
  let c = ctx () in
  Alcotest.(check string) "join" "a-b-c" (Rstr.join c "-" [ "a"; "b"; "c" ]);
  Alcotest.(check int) "find_char" 2 (Rstr.find_char c "abcabc" 'c' ~start:0);
  Alcotest.(check int) "find from" 5 (Rstr.find_char c "abcabc" 'c' ~start:3);
  Alcotest.(check int) "not found" (-1) (Rstr.find_char c "abc" 'z' ~start:0);
  Alcotest.(check string) "replace" "xbxb" (Rstr.replace c "abab" "a" "x");
  Alcotest.(check (list string)) "split" [ "a"; "b"; "" ] (Rstr.split c "a,b," ',');
  Alcotest.(check string) "int2dec" "-42" (Rstr.int2dec c (-42));
  Alcotest.(check (option int)) "string_to_int" (Some 17)
    (Rstr.string_to_int c " 17 ")

let test_str_escape () =
  let c = ctx () in
  Alcotest.(check string) "json" "a\\\"b\\nc" (Rstr.encode_ascii c "a\"b\nc");
  Alcotest.(check string) "translate" "x&amp;y"
    (Rstr.translate c "x&y" [ ('&', "&amp;") ])

let test_builder () =
  let c = ctx () in
  let b = Rstr.builder_new c in
  Rstr.builder_append c b "foo";
  Rstr.builder_append c b "bar";
  Alcotest.(check string) "build" "foobar" (Rstr.builder_build c b)

(* --- sets --- *)

let test_set_algebra () =
  let c = ctx () in
  let a = Rset.create c [ vint 1; vint 2; vint 3 ] in
  let b = Rset.create c [ vint 2; vint 3; vint 4 ] in
  let diff = Rset.difference c a b in
  Alcotest.(check int) "diff" 1 (Rset.length (Rset.of_obj diff));
  let inter = Rset.intersection c a b in
  Alcotest.(check int) "inter" 2 (Rset.length (Rset.of_obj inter));
  let union = Rset.union c a b in
  Alcotest.(check int) "union" 4 (Rset.length (Rset.of_obj union));
  Alcotest.(check bool) "subset" true (Rset.issubset c inter a);
  Alcotest.(check bool) "not subset" false (Rset.issubset c union a)

(* --- arithmetic tower --- *)

let test_arith_overflow_promotes () =
  let c = ctx () in
  let big = Rarith.mul c (vint max_int) (vint 2) in
  (match V.view big with
  | V.Obj { payload = V.Bigint _; _ } -> ()
  | _ -> Alcotest.failf "expected bigint, got %s" (V.repr big));
  (* and demotes when shrinking back *)
  let back = Rarith.floordiv c big (vint 2) in
  Alcotest.(check bool) "demoted" true (back = vint max_int)

let test_arith_float_contagion () =
  let c = ctx () in
  Alcotest.(check bool) "int+float" true
    (Rarith.add c (vint 1) (V.of_float 0.5) = V.of_float 1.5)

let test_arith_python_mod () =
  let c = ctx () in
  Alcotest.(check bool) "-7 % 3" true (Rarith.modulo c (vint (-7)) (vint 3) = vint 2);
  Alcotest.(check bool) "7 % -3" true (Rarith.modulo c (vint 7) (vint (-3)) = vint (-2))

let test_arith_pow () =
  let c = ctx () in
  Alcotest.(check bool) "2**10" true (Rarith.pow c (vint 2) (vint 10) = vint 1024);
  (* big power promotes *)
  match V.view (Rarith.pow c (vint 10) (vint 30)) with
  | V.Obj { payload = V.Bigint b; _ } ->
      Alcotest.(check string) "10^30" ("1" ^ String.make 30 '0') (B.to_string b)
  | _ -> Alcotest.fail "expected bigint"

let prop_arith_matches_native =
  QCheck.Test.make ~name:"value arithmetic matches native in range" ~count:1000
    QCheck.(pair (int_range (-10000) 10000) (int_range (-10000) 10000))
    (fun (a, b) ->
      let c = ctx () in
      Rarith.add c (vint a) (vint b) = vint (a + b)
      && Rarith.sub c (vint a) (vint b) = vint (a - b)
      && Rarith.mul c (vint a) (vint b) = vint (a * b)
      && (b = 0
         || Rarith.modulo c (vint a) (vint b)
            = vint (Rarith.mod_int a b)))

let suite =
  [
    Alcotest.test_case "truthiness" `Quick test_truthiness;
    Alcotest.test_case "py_eq numbers" `Quick test_py_eq_numbers;
    Alcotest.test_case "py_eq tuples" `Quick test_py_eq_tuples;
    Alcotest.test_case "hash/eq consistency" `Quick test_hash_eq_consistent;
    Alcotest.test_case "repr" `Quick test_repr;
    Alcotest.test_case "dict basic" `Quick test_dict_basic;
    Alcotest.test_case "dict insertion order" `Quick test_dict_insertion_order;
    Alcotest.test_case "dict delete/tombstone" `Quick test_dict_delete;
    Alcotest.test_case "dict growth" `Quick test_dict_growth;
    QCheck_alcotest.to_alcotest prop_dict_model;
    Alcotest.test_case "list int strategy" `Quick test_list_int_strategy;
    Alcotest.test_case "list generalization" `Quick test_list_generalizes;
    Alcotest.test_case "list str strategy" `Quick test_list_str_strategy;
    Alcotest.test_case "list float strategy" `Quick test_list_float_strategy;
    Alcotest.test_case "list pop/slice" `Quick test_list_pop_slice;
    Alcotest.test_case "list setslice/find" `Quick test_list_setslice_find;
    QCheck_alcotest.to_alcotest prop_list_model;
    Alcotest.test_case "string ops" `Quick test_str_ops;
    Alcotest.test_case "string escapes" `Quick test_str_escape;
    Alcotest.test_case "string builder" `Quick test_builder;
    Alcotest.test_case "set algebra" `Quick test_set_algebra;
    Alcotest.test_case "overflow promotion" `Quick test_arith_overflow_promotes;
    Alcotest.test_case "float contagion" `Quick test_arith_float_contagion;
    Alcotest.test_case "python modulo" `Quick test_arith_python_mod;
    Alcotest.test_case "pow" `Quick test_arith_pow;
    QCheck_alcotest.to_alcotest prop_arith_matches_native;
  ]
