(** CI wall-clock gate for the simulation hot paths.

    Compares two ["mtj-bench-timings/1"] documents (a committed baseline
    and the current build's run) and fails when either gated group
    regressed by more than the allowed fraction.

    Absolute wall-clock is meaningless across machines, so both gates
    compare machine-independent RATIOS between config groups:

    - {b trace-executor gate}: JIT-config wall time (pypy / pypy-2tier /
      pycket — the configs that spend their time in the trace executor)
      over interpreter/native-config wall time (cpython / pypy-nojit /
      racket / c).  A trace-executor regression raises this ratio.
    - {b interpreter gate}: host nanoseconds per simulated instruction of
      the interpreter-dominated configs (cpython / pypy-nojit / racket)
      over ns-per-insn of the JIT configs.  A regression in the engine's
      charging fast path or the dispatch loops raises this ratio — and
      it cannot hide in the first gate, which such a regression would
      (misleadingly) LOWER.  Simulated insn counts are deterministic, so
      the rate quotient still cancels machine speed.
    - {b allocation gate}: host minor-heap words allocated per simulated
      instruction over the interpreter-dominated configs.  Both numbers
      are machine-independent (the allocation counter is monotonic and
      the simulation is deterministic), so this quotient needs no
      normalization; it catches regressions in the allocation-free value
      fast paths (the immediate-tagged value representation, the unboxed
      cycle-transfer charge path, frame pooling, hoisted key hashes)
      that the wall-clock gates could absorb in noise.

    A fourth, self-contained mode gates the serving harness:

    - {b serving latency gate} ([--serve-gate FILE [UNSEEDED]]): FILE
      is an ["mtj-metrics/9"] document with a [serve] block from a
      session with the shared cache on.  The gate asserts the cache
      actually paid: warm (imported) requests must have a median
      latency no worse than cold (compiling) ones — machine-
      independent, since both medians come from the same host and
      workload.  With a second UNSEEDED file (the same session run with
      [--profile-seed off]), the gate additionally asserts profile
      seeding is not a warm-path pessimization: seeded warm p50 must
      not exceed unseeded warm p50 by more than 10% (the slack absorbs
      host noise between the two runs).

    Usage:
      bench_gate.exe BASELINE.json CURRENT.json [MAX_REGRESS]
      bench_gate.exe --update-baseline BASELINE.json CURRENT.json
      bench_gate.exe --serve-gate METRICS.json [UNSEEDED.json]

    [MAX_REGRESS] defaults to 0.15 (fail above +15%) and applies to both
    gates.  [--update-baseline] validates CURRENT and copies it over
    BASELINE instead of gating.

    Baseline refresh workflow (after an intentional perf change):
    {v
      dune exec bench/main.exe -- all --timings /tmp/BENCH_new.json
      dune exec test/bench_gate.exe -- bench/BENCH_after.json /tmp/BENCH_new.json
      # inspect the printed ratios; if the change is intended:
      dune exec test/bench_gate.exe -- --update-baseline \
          bench/BENCH_after.json /tmp/BENCH_new.json
      git add bench/BENCH_after.json   # commit with the change itself
    v} *)

open Mtj_obs

let jit_configs = [ "pypy"; "pypy-2tier"; "pycket" ]
let ref_configs = [ "cpython"; "pypy-nojit"; "racket"; "c" ]
let interp_configs = [ "cpython"; "pypy-nojit"; "racket" ]

let die fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt

let load file =
  let ic = open_in_bin file in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let j =
    match Json.parse s with
    | Ok j -> j
    | Error e -> die "%s: parse error: %s" file e
  in
  (match Validate.timings j with
  | Ok _ -> ()
  | Error e -> die "%s: invalid timings document: %s" file e);
  j

type groups = {
  jit_wall : float;
  ref_wall : float;
  interp_wall : float;
  interp_insns : float;
  jit_insns : float;
  interp_minor_words : float;
}

let split file j =
  let jit_wall = ref 0.0 and ref_wall = ref 0.0 in
  let interp_wall = ref 0.0 and interp_insns = ref 0.0 in
  let jit_insns = ref 0.0 in
  let interp_minor_words = ref 0.0 in
  let runs =
    match Option.bind (Json.member "runs" j) Json.get_arr with
    | Some r -> r
    | None -> die "%s: no runs" file
  in
  List.iter
    (fun r ->
      let str k = Option.bind (Json.member k r) Json.get_str in
      let num k = Option.bind (Json.member k r) Json.get_num in
      match (str "config", num "wall_s", num "insns", num "minor_words") with
      | Some c, Some w, Some insns, Some mw ->
          if List.mem c jit_configs then begin
            jit_wall := !jit_wall +. w;
            jit_insns := !jit_insns +. insns
          end
          else if List.mem c ref_configs then ref_wall := !ref_wall +. w;
          if List.mem c interp_configs then begin
            interp_wall := !interp_wall +. w;
            interp_insns := !interp_insns +. insns;
            interp_minor_words := !interp_minor_words +. mw
          end
      | _ -> die "%s: malformed run row" file)
    runs;
  if !jit_wall <= 0.0 then die "%s: no JIT-config runs" file;
  if !ref_wall <= 0.0 then die "%s: no reference-config runs" file;
  if !interp_insns <= 0.0 then die "%s: no interpreter-config insns" file;
  if !jit_insns <= 0.0 then die "%s: no JIT-config insns" file;
  if !interp_minor_words <= 0.0 then
    die "%s: no interpreter-config minor_words" file;
  {
    jit_wall = !jit_wall;
    ref_wall = !ref_wall;
    interp_wall = !interp_wall;
    interp_insns = !interp_insns;
    jit_insns = !jit_insns;
    interp_minor_words = !interp_minor_words;
  }

(* ns per simulated instruction of the interpreter rows, normalized by
   the same rate over the JIT rows *)
let interp_ratio g =
  (g.interp_wall /. g.interp_insns) /. (g.jit_wall /. g.jit_insns)

(* host minor-heap words allocated per simulated instruction over the
   interpreter rows; machine-independent, so gated without
   normalization *)
let alloc_ratio g = g.interp_minor_words /. g.interp_insns

let update_baseline ~baseline_file ~current_file =
  ignore (load current_file);
  let ic = open_in_bin current_file in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin baseline_file in
  output_string oc s;
  close_out oc;
  Printf.printf "baseline %s updated from %s\n" baseline_file current_file

(* serving latency gate: on a shared-cache-on session, warm p50 must not
   exceed cold p50 — if importing a compiled bundle is not cheaper than
   compiling, the shared cache has regressed into pure overhead.  With a
   second (seed-off) session, seeded warm p50 must additionally not
   exceed unseeded warm p50 by more than the noise slack — profile
   seeding does host-side pre-translation on the warm path and must
   never turn that into a latency loss. *)
let load_serve_block file =
  let ic = open_in_bin file in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let j =
    match Json.parse s with
    | Ok j -> j
    | Error e -> die "%s: parse error: %s" file e
  in
  (match Validate.metrics j with
  | Ok _ -> ()
  | Error e -> die "%s: invalid metrics document: %s" file e);
  let serve =
    match Json.member "serve" j with
    | Some s -> s
    | None -> die "%s: no serve block" file
  in
  (match Json.member "shared_cache" serve with
  | Some (Json.Bool true) -> ()
  | _ -> die "%s: serve gate needs a shared-cache-on session" file);
  serve

let serve_p50 file serve name =
  let block =
    match Json.member name serve with
    | Some b -> b
    | None -> die "%s: serve block missing %s" file name
  in
  let p50 =
    match Option.bind (Json.member "p50_ms" block) Json.get_num with
    | Some v -> v
    | None -> die "%s: serve.%s.p50_ms missing" file name
  in
  let count =
    match Option.bind (Json.member "count" block) Json.get_int with
    | Some v -> v
    | None -> die "%s: serve.%s.count missing" file name
  in
  (p50, count)

(* warm-path slack for the seeded-vs-unseeded comparison: the two
   medians come from different host runs of the same workload *)
let seed_slack = 1.10

let serve_gate ?unseeded file =
  let serve = load_serve_block file in
  let cold_p50, cold_n = serve_p50 file serve "cold" in
  let warm_p50, warm_n = serve_p50 file serve "warm" in
  Printf.printf "serve gate: cold p50=%.3fms (%d requests)  warm p50=%.3fms (%d requests)\n"
    cold_p50 cold_n warm_p50 warm_n;
  if warm_n = 0 then die "%s: no warm requests — shared cache never hit" file;
  if cold_n = 0 then die "%s: no cold requests" file;
  if warm_p50 > cold_p50 then begin
    Printf.eprintf "FAIL: warm p50 %.3fms > cold p50 %.3fms\n" warm_p50
      cold_p50;
    exit 1
  end;
  (match unseeded with
  | None -> ()
  | Some ufile ->
      let userve = load_serve_block ufile in
      (match Json.member "profile_seed" serve with
      | Some (Json.Bool true) -> ()
      | _ -> die "%s: seeded-vs-unseeded gate needs profile_seed on" file);
      (match Json.member "profile_seed" userve with
      | Some (Json.Bool false) -> ()
      | _ -> die "%s: second file must be a profile-seed-off session" ufile);
      let u_warm_p50, u_warm_n = serve_p50 ufile userve "warm" in
      Printf.printf
        "serve gate: seeded warm p50=%.3fms vs unseeded warm p50=%.3fms \
         (%d requests, slack %.0f%%)\n"
        warm_p50 u_warm_p50 u_warm_n (100.0 *. (seed_slack -. 1.0));
      if u_warm_n = 0 then die "%s: no warm requests" ufile;
      if warm_p50 > u_warm_p50 *. seed_slack then begin
        Printf.eprintf
          "FAIL: seeded warm p50 %.3fms > unseeded warm p50 %.3fms x %.2f\n"
          warm_p50 u_warm_p50 seed_slack;
        exit 1
      end);
  print_endline "OK"

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (match args with
  | [ "--serve-gate"; file ] ->
      serve_gate file;
      exit 0
  | [ "--serve-gate"; file; unseeded ] ->
      serve_gate ~unseeded file;
      exit 0
  | _ -> ());
  let update, args =
    match args with
    | "--update-baseline" :: rest -> (true, rest)
    | _ -> (false, args)
  in
  let baseline_file, current_file, max_regress =
    match args with
    | [ b; c ] -> (b, c, 0.15)
    | [ b; c; m ] when not update -> (b, c, float_of_string m)
    | _ ->
        die
          "usage: %s [--update-baseline] BASELINE.json CURRENT.json \
           [MAX_REGRESS]"
          Sys.argv.(0)
  in
  if update then update_baseline ~baseline_file ~current_file
  else begin
    let b = split baseline_file (load baseline_file) in
    let c = split current_file (load current_file) in
    let failed = ref false in
    let gate name bval cval =
      let change = (cval -. bval) /. bval in
      Printf.printf "%s: baseline=%.4f current=%.4f change=%+.1f%% (limit +%.0f%%)\n"
        name bval cval (100.0 *. change) (100.0 *. max_regress);
      if change > max_regress then begin
        Printf.eprintf "FAIL: %s regressed past the limit\n" name;
        failed := true
      end
    in
    Printf.printf
      "baseline: jit=%.3fs ref=%.3fs interp=%.3fs\n\
       current:  jit=%.3fs ref=%.3fs interp=%.3fs\n"
      b.jit_wall b.ref_wall b.interp_wall c.jit_wall c.ref_wall c.interp_wall;
    gate "trace-executor wall ratio" (b.jit_wall /. b.ref_wall)
      (c.jit_wall /. c.ref_wall);
    gate "interpreter ns/insn ratio" (interp_ratio b) (interp_ratio c);
    gate "interpreter minor-words/insn" (alloc_ratio b) (alloc_ratio c);
    if !failed then exit 1;
    print_endline "OK"
  end
