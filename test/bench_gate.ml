(** CI wall-clock gate for the trace executor.

    Compares two ["mtj-bench-timings/1"] documents (a committed baseline
    and the current build's run) and fails when the JIT-dominated
    configurations regressed by more than the allowed fraction.

    Absolute wall-clock is meaningless across machines, so the gate
    compares the RATIO of JIT-config wall time (pypy / pypy-2tier /
    pycket — the configs that spend their time in the trace executor) to
    interpreter/native-config wall time (cpython / pypy-nojit / racket /
    c — paths the executor change does not touch).  That normalizes out
    runner speed while staying sensitive to trace-executor regressions.

    Usage: bench_gate.exe BASELINE.json CURRENT.json [MAX_REGRESS]
    (MAX_REGRESS defaults to 0.15, i.e. fail above +15%). *)

open Mtj_obs

let jit_configs = [ "pypy"; "pypy-2tier"; "pycket" ]
let ref_configs = [ "cpython"; "pypy-nojit"; "racket"; "c" ]

let die fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt

let load file =
  let ic = open_in_bin file in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let j =
    match Json.parse s with
    | Ok j -> j
    | Error e -> die "%s: parse error: %s" file e
  in
  (match Validate.timings j with
  | Ok _ -> ()
  | Error e -> die "%s: invalid timings document: %s" file e);
  j

(* (jit wall, reference wall) over the document's runs *)
let split_wall file j =
  let jit = ref 0.0 and base = ref 0.0 in
  let runs =
    match Option.bind (Json.member "runs" j) Json.get_arr with
    | Some r -> r
    | None -> die "%s: no runs" file
  in
  List.iter
    (fun r ->
      let str k = Option.bind (Json.member k r) Json.get_str in
      let num k = Option.bind (Json.member k r) Json.get_num in
      match (str "config", num "wall_s") with
      | Some c, Some w ->
          if List.mem c jit_configs then jit := !jit +. w
          else if List.mem c ref_configs then base := !base +. w
      | _ -> die "%s: malformed run row" file)
    runs;
  if !jit <= 0.0 then die "%s: no JIT-config runs" file;
  if !base <= 0.0 then die "%s: no reference-config runs" file;
  (!jit, !base)

let () =
  let baseline_file, current_file, max_regress =
    match Array.to_list Sys.argv with
    | [ _; b; c ] -> (b, c, 0.15)
    | [ _; b; c; m ] -> (b, c, float_of_string m)
    | _ ->
        die "usage: %s BASELINE.json CURRENT.json [MAX_REGRESS]" Sys.argv.(0)
  in
  let bjit, bbase = split_wall baseline_file (load baseline_file) in
  let cjit, cbase = split_wall current_file (load current_file) in
  let bratio = bjit /. bbase and cratio = cjit /. cbase in
  let change = (cratio -. bratio) /. bratio in
  Printf.printf
    "baseline: jit=%.3fs ref=%.3fs ratio=%.4f\n\
     current:  jit=%.3fs ref=%.3fs ratio=%.4f\n\
     normalized trace-executor change: %+.1f%% (limit +%.0f%%)\n"
    bjit bbase bratio cjit cbase cratio (100.0 *. change)
    (100.0 *. max_regress);
  if change > max_regress then begin
    prerr_endline "FAIL: trace-executor wall-clock regressed past the limit";
    exit 1
  end;
  print_endline "OK"
