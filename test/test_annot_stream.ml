(** Invariants of the cross-layer annotation stream itself.

    The pintool listeners (phase tracker, rate sampler, AOT attribution)
    all assume the stream is well-formed: phase pushes/pops balance like
    parentheses, AOT enters/exits pair up, and trace enter/exit events
    bracket JIT execution. Runs real programs under an eagerly-JITting
    VM — exercising tracing, deopts, bridges, GC and AOT calls — and
    checks the raw stream, not any listener's digest of it. *)

module V = Mtj_pylite.Vm
module C = Mtj_core.Config
module A = Mtj_core.Annot
module Phase = Mtj_core.Phase

type stats = {
  mutable max_phase_depth : int;
  mutable gc_inside_jit : bool;
  mutable aot_depth : int;
  mutable max_aot_depth : int;
  mutable ticks : int;
  mutable guard_fails : int;
  mutable compiles : int;
  mutable aborts : int;
  mutable violations : string list;
}

let collect src config =
  let vm = V.create ~config () in
  let st =
    {
      max_phase_depth = 0;
      gc_inside_jit = false;
      aot_depth = 0;
      max_aot_depth = 0;
      ticks = 0;
      guard_fails = 0;
      compiles = 0;
      aborts = 0;
      violations = [];
    }
  in
  let phase_stack = ref [] in
  let trace_stack = ref [] in
  let violate fmt =
    Printf.ksprintf (fun m -> st.violations <- m :: st.violations) fmt
  in
  Mtj_machine.Engine.add_listener (V.engine vm) (fun ~insns:_ a ->
      match a with
      | A.Phase_push p ->
          (match (p, !phase_stack) with
          | (Phase.Gc_minor | Phase.Gc_major), (Phase.Jit | Phase.Jit_call) :: _
            ->
              st.gc_inside_jit <- true
          | _ -> ());
          phase_stack := p :: !phase_stack;
          st.max_phase_depth <-
            max st.max_phase_depth (List.length !phase_stack)
      | A.Phase_pop p -> (
          match !phase_stack with
          | top :: rest when top = p -> phase_stack := rest
          | top :: _ ->
              violate "pop %s but top is %s" (Phase.name p) (Phase.name top)
          | [] -> violate "pop %s on empty phase stack" (Phase.name p))
      | A.Dispatch_tick -> st.ticks <- st.ticks + 1
      | A.Aot_enter _ ->
          st.aot_depth <- st.aot_depth + 1;
          st.max_aot_depth <- max st.max_aot_depth st.aot_depth
      | A.Aot_exit _ ->
          if st.aot_depth = 0 then violate "aot exit at depth 0"
          else st.aot_depth <- st.aot_depth - 1
      | A.Trace_enter id -> trace_stack := id :: !trace_stack
      | A.Trace_exit id -> (
          match !trace_stack with
          | top :: rest when top = id -> trace_stack := rest
          | top :: _ -> violate "trace exit %d but top is %d" id top
          | [] -> violate "trace exit %d with no trace entered" id)
      | A.Guard_fail _ ->
          st.guard_fails <- st.guard_fails + 1;
          if !trace_stack = [] then violate "guard fail outside any trace"
      | A.Trace_compile _ -> (
          st.compiles <- st.compiles + 1;
          match !phase_stack with
          | Phase.Tracing :: _ -> ()
          | _ -> violate "trace_compile outside the tracing phase")
      | A.Trace_abort _ -> (
          st.aborts <- st.aborts + 1;
          match !phase_stack with
          | Phase.Tracing :: _ -> ()
          | _ -> violate "trace_abort outside the tracing phase")
      | A.Ir_exec _ | A.App_marker _ -> ());
  (match V.run_source vm src with
  | Mtj_rjit.Driver.Completed _ -> ()
  | Mtj_rjit.Driver.Budget_exceeded -> Alcotest.fail "budget"
  | Mtj_rjit.Driver.Runtime_error e -> Alcotest.failf "error: %s" e);
  if !phase_stack <> [] then
    violate "%d phases still open at exit" (List.length !phase_stack);
  if !trace_stack <> [] then
    violate "%d traces still open at exit" (List.length !trace_stack);
  if st.aot_depth <> 0 then violate "aot depth %d at exit" st.aot_depth;
  st

let eager =
  {
    C.default with
    C.jit_threshold = 7;
    bridge_threshold = 3;
    insn_budget = 80_000_000;
  }

let check st =
  Alcotest.(check (list string)) "no stream violations" [] st.violations

(* numeric loop: traces, overflow guards, AOT float calls *)
let test_numeric_stream () =
  let st =
    collect
      "s = 0.0\n\
       for i in range(3000):\n\
      \    s = s + i * 1.5\n\
       print(s)\n"
      eager
  in
  check st;
  Alcotest.(check bool) "ticks counted" true (st.ticks > 3000);
  Alcotest.(check bool) "phases nested" true (st.max_phase_depth >= 2);
  Alcotest.(check bool) "compiles announced" true (st.compiles >= 1)

(* allocation loop under a tiny nursery: GC interrupts JIT code *)
let test_gc_interrupts_stream () =
  let st =
    collect
      (* the rows escape into [out], so the trace must really allocate
         (a non-escaping list would be virtualized away) *)
      "out = []\n\
       acc = 0\n\
       for i in range(2500):\n\
      \    xs = [i, i + 1, i + 2]\n\
      \    out.append(xs)\n\
      \    acc = acc + xs[2]\n\
       print(acc)\n"
      { eager with C.nursery_words = 512 }
  in
  check st;
  Alcotest.(check bool) "gc interrupted jit code" true st.gc_inside_jit

(* branchy loop: bridges and guard failures *)
let test_bridgy_stream () =
  let st =
    collect
      "acc = 0\n\
       for i in range(4000):\n\
      \    if i % 7 == 0:\n\
      \        acc = acc + 2\n\
      \    elif i % 3 == 0:\n\
      \        acc = acc - 1\n\
      \    else:\n\
      \        acc = acc + i\n\
       print(acc)\n"
      eager
  in
  check st;
  Alcotest.(check bool) "guard failures observed" true (st.guard_fails > 0)

(* dict/string workload: AOT calls from traces, nesting *)
let test_aot_stream () =
  let st =
    collect
      "d = {}\n\
       for i in range(2000):\n\
      \    k = \"k\" + str(i % 50)\n\
      \    if k in d:\n\
      \        d[k] = d[k] + 1\n\
      \    else:\n\
      \        d[k] = 1\n\
       total = 0\n\
       for k in d:\n\
      \    total = total + d[k]\n\
       print(total)\n"
      eager
  in
  check st;
  Alcotest.(check bool) "AOT calls observed" true (st.max_aot_depth >= 1)

(* two-tier mode must keep the stream well-formed across retier exits *)
let test_tiered_stream () =
  let st =
    collect
      "s = 0\nfor i in range(3000):\n    s = s + i\nprint(s)\n"
      { eager with C.tier_policy = C.Adaptive; tier2_threshold = 10 }
  in
  check st

let suite =
  [
    Alcotest.test_case "numeric loop stream" `Quick test_numeric_stream;
    Alcotest.test_case "gc interrupts jit" `Quick test_gc_interrupts_stream;
    Alcotest.test_case "bridgy loop stream" `Quick test_bridgy_stream;
    Alcotest.test_case "aot calls from traces" `Quick test_aot_stream;
    Alcotest.test_case "two-tier stream" `Quick test_tiered_stream;
  ]
