(** Differential test of the closure-threaded executor ({!Executor.run})
    against the reference interpreting loop ({!Executor.run_ref}).

    Random straight-line traces (integer/float/string arithmetic, heap
    traffic, failable guards, division that deoptimizes at the bytecode
    boundary) and deterministic loop / bridge / call_assembler / tiered
    scenarios are executed through both strategies in fresh contexts.
    Everything observable must be BYTE-IDENTICAL: the exit state
    (finished value, failed guard, materialized frames), per-phase
    simulated machine counters (including float cycles, compared
    exactly), trace entry counts, per-op execution counts, and guard
    fail counts.  The threaded form is an execution-strategy change
    only; any divergence is a bug in the translation or in a fused
    superinstruction. *)

open Mtj_rjit
module V = Mtj_rt.Value
module Counters = Mtj_machine.Counters
module Engine = Mtj_machine.Engine
module Config = Mtj_core.Config
module Phase = Mtj_core.Phase

type executor =
  Mtj_rt.Ctx.t ->
  Jitlog.t ->
  trace:Ir.trace ->
  entry:V.t array ->
  Executor.exit_state

(* ---------- observation digest ---------- *)

let snap_str (s : Counters.snapshot) =
  Printf.sprintf "i=%d c=%.17g b=%d bm=%d l=%d s=%d cm=%d" s.Counters.insns
    s.Counters.cycles s.Counters.branches s.Counters.branch_misses
    s.Counters.loads s.Counters.stores s.Counters.cache_misses

let render_exit (ex : Executor.exit_state) =
  let buf = Buffer.create 128 in
  (match ex.Executor.finished with
  | Some v -> Buffer.add_string buf ("finish:" ^ V.repr v)
  | None -> Buffer.add_string buf "deopt");
  (match ex.Executor.failed_guard with
  | Some g -> Buffer.add_string buf (Printf.sprintf "|guard=%d" g.Ir.guard_id)
  | None -> ());
  (match ex.Executor.failed_in with
  | Some t -> Buffer.add_string buf (Printf.sprintf "|in=%d" t.Ir.trace_id)
  | None -> ());
  Buffer.add_string buf
    (Printf.sprintf "|bridge?=%b" ex.Executor.request_bridge);
  List.iter
    (fun (f : Executor.deopt_frame) ->
      Buffer.add_string buf
        (Printf.sprintf "|frame code=%d pc=%d discard=%b locals="
           f.Executor.df_code f.Executor.df_pc f.Executor.df_discard);
      Array.iter (fun v -> Buffer.add_string buf (V.repr v ^ ",")) f.Executor.df_locals;
      Buffer.add_string buf " stack=";
      Array.iter (fun v -> Buffer.add_string buf (V.repr v ^ ",")) f.Executor.df_stack)
    ex.Executor.frames;
  Buffer.contents buf

(* everything the machine and the JIT runtime expose about a run *)
let observe rtc (traces : Ir.trace list) exits =
  let buf = Buffer.create 256 in
  List.iteri
    (fun i e ->
      Buffer.add_string buf (Printf.sprintf "exit%d: %s\n" i e))
    exits;
  let counters = Engine.counters (Mtj_rt.Ctx.engine rtc) in
  List.iter
    (fun p ->
      let s = Counters.phase counters p in
      if s.Counters.insns <> 0 then
        Buffer.add_string buf
          (Printf.sprintf "%s: %s\n" (Phase.name p) (snap_str s)))
    Phase.all;
  Buffer.add_string buf ("total: " ^ snap_str (Counters.total counters) ^ "\n");
  List.iter
    (fun (t : Ir.trace) ->
      Buffer.add_string buf
        (Printf.sprintf "trace%d: entries=%d op_exec=[%s] fails=[%s]\n"
           t.Ir.trace_id t.Ir.exec_count
           (String.concat ","
              (List.map string_of_int (Array.to_list t.Ir.op_exec)))
           (String.concat ","
              (Array.to_list t.Ir.ops
              |> List.filter_map (fun (op : Ir.op) ->
                     match op.Ir.opcode with
                     | Ir.Guard g ->
                         Some
                           (Printf.sprintf "%d:%d" g.Ir.guard_id
                              g.Ir.fail_count)
                     | _ -> None)))))
    traces;
  Buffer.contents buf

(* run [exec] and render the exit (exceptions render too: the threaded
   executor must raise exactly what the reference loop raises) *)
let exit_of (exec : executor) rtc jitlog trace entry =
  match exec rtc jitlog ~trace ~entry:(Array.copy entry) with
  | ex -> render_exit ex
  | exception e -> "raise:" ^ Printexc.to_string e

(* ---------- random straight-line traces ---------- *)

type rkind = RInt | RFloat | RBool | RStr | RArr | RCell | RList

let guard_ctr = ref 0

type gen_state = {
  rng : Random.State.t;
  mutable ops : Ir.op list; (* reversed *)
  mutable regs : (int * rkind) list; (* newest first *)
  mutable next : int;
}

let fresh st kind =
  let r = st.next in
  st.next <- r + 1;
  st.regs <- (r, kind) :: st.regs;
  r

let push st op = st.ops <- op :: st.ops
let emit st ?(result = -1) opcode args = push st { Ir.opcode; args; result }

let pick_kind st kind =
  let cands = List.filter (fun (_, k) -> k = kind) st.regs in
  match cands with
  | [] -> None
  | _ ->
      Some (fst (List.nth cands (Random.State.int st.rng (List.length cands))))

let live_snap st =
  let n = 1 + Random.State.int st.rng 4 in
  let all = Array.of_list (List.map fst st.regs) in
  let live =
    Array.init n (fun _ ->
        Ir.S_reg all.(Random.State.int st.rng (Array.length all)))
  in
  {
    Ir.frames =
      [
        {
          Ir.snap_code = 1;
          snap_pc = Random.State.int st.rng 64;
          snap_locals = live;
          snap_stack = [||];
          snap_discard = false;
        };
      ];
    r_virtuals = [||];
  }

let emit_guard st gkind args =
  incr guard_ctr;
  push st
    {
      Ir.opcode =
        Ir.Guard
          {
            Ir.guard_id = 500_000 + !guard_ctr;
            gkind;
            resume = live_snap st;
            fail_count = 0;
            bridge = None;
            bridgeable = true;
          };
      args;
      result = -1;
    }

let emit_dmp st =
  emit st
    (Ir.Debug_merge_point
       { dmp_code = 1; dmp_pc = Random.State.int st.rng 64;
         dmp_resume = live_snap st })
    [||]

let gen_step st =
  let rnd n = Random.State.int st.rng n in
  let int_reg () = Option.get (pick_kind st RInt) in
  let float_reg () = Option.get (pick_kind st RFloat) in
  match rnd 16 with
  | 0 | 1 ->
      (* int arithmetic *)
      let a = int_reg () and b = int_reg () in
      let opc =
        match rnd 5 with
        | 0 -> Ir.Int_add
        | 1 -> Ir.Int_sub
        | 2 -> Ir.Int_xor
        | 3 -> Ir.Int_and
        | _ -> Ir.Int_or
      in
      let r = fresh st RInt in
      emit st ~result:r opc [| Ir.Reg a; Ir.Reg b |]
  | 2 ->
      (* int op immediately followed by its overflow guard: the threaded
         translator fuses this pair into one superinstruction *)
      let a = int_reg () and b = int_reg () in
      let opc, gk =
        match rnd 3 with
        | 0 -> (Ir.Int_add, Ir.G_no_ovf_add)
        | 1 -> (Ir.Int_sub, Ir.G_no_ovf_sub)
        | _ -> (Ir.Int_mul, Ir.G_no_ovf_mul)
      in
      let args = [| Ir.Reg a; Ir.Reg b |] in
      let r = fresh st RInt in
      emit st ~result:r opc args;
      emit_guard st gk (Array.copy args)
  | 3 ->
      (* compare immediately followed by a guard on its result: the
         other fused superinstruction; fails on real data *)
      let a = int_reg () and b = int_reg () in
      let opc =
        match rnd 6 with
        | 0 -> Ir.Int_lt
        | 1 -> Ir.Int_le
        | 2 -> Ir.Int_eq
        | 3 -> Ir.Int_ne
        | 4 -> Ir.Int_gt
        | _ -> Ir.Int_ge
      in
      let r = fresh st RBool in
      emit st ~result:r opc [| Ir.Reg a; Ir.Reg b |];
      emit_guard st
        (if rnd 2 = 0 then Ir.G_true else Ir.G_false)
        [| Ir.Reg r |]
  | 4 ->
      (* division: raises at 0 and deopts to the bytecode boundary *)
      let a = int_reg () and b = int_reg () in
      let r = fresh st RInt in
      emit st ~result:r
        (if rnd 2 = 0 then Ir.Int_floordiv else Ir.Int_mod)
        [| Ir.Reg a; Ir.Reg b |]
  | 5 ->
      (* float arithmetic; truediv by zero deopts at the boundary *)
      let a = float_reg () and b = float_reg () in
      let opc =
        match rnd 4 with
        | 0 -> Ir.Float_add
        | 1 -> Ir.Float_sub
        | 2 -> Ir.Float_mul
        | _ -> Ir.Float_truediv
      in
      let r = fresh st RFloat in
      emit st ~result:r opc [| Ir.Reg a; Ir.Reg b |]
  | 6 ->
      (* float compare + fused guard *)
      let a = float_reg () and b = float_reg () in
      let opc =
        match rnd 4 with
        | 0 -> Ir.Float_lt
        | 1 -> Ir.Float_le
        | 2 -> Ir.Float_eq
        | _ -> Ir.Float_gt
      in
      let r = fresh st RBool in
      emit st ~result:r opc [| Ir.Reg a; Ir.Reg b |];
      if rnd 2 = 0 then emit_guard st Ir.G_true [| Ir.Reg r |]
  | 7 ->
      let a = int_reg () in
      let r = fresh st RFloat in
      emit st ~result:r Ir.Cast_int_to_float [| Ir.Reg a |]
  | 8 ->
      (* unary int ops *)
      let a = int_reg () in
      let r = fresh st (if rnd 2 = 0 then RInt else RBool) in
      (match rnd 3 with
      | 0 -> emit st ~result:r Ir.Int_neg [| Ir.Reg a |]
      | 1 -> emit st ~result:r Ir.Int_is_true [| Ir.Reg a |]
      | _ -> emit st ~result:r Ir.Int_is_zero [| Ir.Reg a |])
  | 9 -> (
      (* strings: bounded concat, length, equality, failable getitem *)
      match pick_kind st RStr with
      | None -> ()
      | Some s -> (
          match rnd 4 with
          | 0 ->
              let r = fresh st RStr in
              emit st ~result:r Ir.Str_concat
                [| Ir.Reg s; Ir.Const (V.of_str "ab") |]
          | 1 ->
              let r = fresh st RInt in
              emit st ~result:r Ir.Strlen [| Ir.Reg s |]
          | 2 ->
              let r = fresh st RBool in
              emit st ~result:r Ir.Str_eq
                [| Ir.Reg s; Ir.Const (V.of_str "xy") |]
          | _ ->
              let r = fresh st RStr in
              emit st ~result:r Ir.Strgetitem
                [| Ir.Reg s; Ir.Const (V.of_int (rnd 6)) |]))
  | 10 ->
      (* heap: a cell created from an int, read back *)
      let v = int_reg () in
      let cell = fresh st RCell in
      emit st ~result:cell Ir.New_cell [| Ir.Reg v |];
      let r = fresh st RInt in
      emit st ~result:r Ir.Getcell [| Ir.Reg cell |]
  | 11 -> (
      match pick_kind st RCell with
      | None -> ()
      | Some cell ->
          let v = int_reg () in
          emit st Ir.Setcell [| Ir.Reg cell; Ir.Reg v |])
  | 12 -> (
      (* tuples: create / read (charges a simulated memory access) *)
      match pick_kind st RArr with
      | None ->
          let a = int_reg () and b = int_reg () in
          let t = fresh st RArr in
          emit st ~result:t (Ir.New_array 2) [| Ir.Reg a; Ir.Reg b |]
      | Some t ->
          let r = fresh st RInt in
          emit st ~result:r Ir.Getarrayitem_gc
            [| Ir.Reg t; Ir.Const (V.of_int (rnd 2)) |])
  | 13 -> (
      (* lists: create or mutate + read *)
      match pick_kind st RList with
      | None ->
          let a = int_reg () and b = int_reg () in
          let l = fresh st RList in
          emit st ~result:l (Ir.New_list 2) [| Ir.Reg a; Ir.Reg b |]
      | Some l ->
          let v = int_reg () in
          emit st Ir.Setlistitem
            [| Ir.Reg l; Ir.Const (V.of_int (rnd 2)); Ir.Reg v |];
          let r = fresh st RInt in
          emit st ~result:r Ir.Getlistitem
            [| Ir.Reg l; Ir.Const (V.of_int (rnd 2)) |])
  | 14 ->
      (* standalone guards that can fail *)
      let a = int_reg () in
      let gk =
        match rnd 4 with
        | 0 -> Ir.G_index_lt
        | 1 -> Ir.G_value (V.of_int (rnd 8))
        | 2 -> Ir.G_class (if rnd 4 = 0 then Ir.Ty_float else Ir.Ty_int)
        | _ -> Ir.G_nonnull
      in
      let args =
        match gk with
        | Ir.G_index_lt -> [| Ir.Reg a; Ir.Const (V.of_int (rnd 40)) |]
        | _ -> [| Ir.Reg a |]
      in
      emit_guard st gk args
  | _ -> emit_dmp st

(* xor-fold the int registers so corrupted dataflow changes the answer *)
let epilogue st =
  let acc = ref (Option.get (pick_kind st RInt)) in
  List.iter
    (fun (r, k) ->
      if k = RInt then begin
        let nr = fresh st RInt in
        emit st ~result:nr Ir.Int_xor [| Ir.Reg !acc; Ir.Reg r |];
        acc := nr
      end)
    st.regs;
  emit st Ir.Finish [| Ir.Reg !acc |]

let entry_slots = 6 (* 3 ints, 2 floats, 1 string *)

let gen_program seed =
  let rng = Random.State.make [| seed; 0x7d1f |] in
  let st = { rng; ops = []; regs = []; next = entry_slots } in
  List.iteri
    (fun i k -> st.regs <- (i, k) :: st.regs)
    [ RInt; RInt; RInt; RFloat; RFloat; RStr ];
  (* a merge point first, so boundary deopts always have a resume *)
  emit_dmp st;
  let nsteps = 4 + Random.State.int rng 28 in
  for _ = 1 to nsteps do
    gen_step st
  done;
  epilogue st;
  let entry =
    [|
      V.of_int (Random.State.int rng 201 - 100);
      V.of_int (Random.State.int rng 201 - 100);
      V.of_int (Random.State.int rng 201 - 100);
      V.of_float (float_of_int (Random.State.int rng 17 - 8) /. 4.0);
      V.of_float (float_of_int (Random.State.int rng 17 - 8) /. 4.0);
      V.of_str (String.sub "hello" 0 (Random.State.int rng 6));
    |]
  in
  (Array.of_list (List.rev st.ops), entry)

(* fresh guards per run: the executors bump fail counts in place *)
let copy_ops ops =
  Array.map
    (fun (op : Ir.op) ->
      match op.Ir.opcode with
      | Ir.Guard g -> { op with Ir.opcode = Ir.Guard { g with Ir.guard_id = g.Ir.guard_id } }
      | _ -> { op with Ir.args = Array.copy op.Ir.args })
    ops

let run_random (exec : executor) ops entry =
  let rtc = Mtj_rt.Ctx.create () in
  let jitlog = Jitlog.create () in
  let ops = copy_ops ops in
  let trace =
    Backend.compile jitlog rtc
      ~kind:(Ir.Loop { loop_code = 1; loop_pc = 0 })
      ~entry_slots ops
  in
  let e = exit_of exec rtc jitlog trace entry in
  observe rtc [ trace ] [ e ]

let prop_threaded_identical =
  QCheck.Test.make ~name:"threaded executor is byte-identical to reference"
    ~count:300
    (QCheck.make QCheck.Gen.(int_range 1 1_000_000))
    (fun seed ->
      let ops, entry = gen_program seed in
      let reference = run_random Executor.run_ref ops entry in
      let threaded = run_random Executor.run ops entry in
      if String.equal reference threaded then true
      else
        QCheck.Test.fail_reportf "seed %d diverged:\n--- reference:\n%s--- threaded:\n%s"
          seed reference threaded)

(* the property only bites if the generator reaches all three outcomes *)
let test_generator_coverage () =
  let finish = ref 0 and guard = ref 0 and boundary = ref 0 in
  for seed = 1 to 150 do
    let ops, entry = gen_program seed in
    let r = run_random Executor.run_ref ops entry in
    let contains sub =
      let n = String.length sub in
      let rec go i =
        i + n <= String.length r && (String.sub r i n = sub || go (i + 1))
      in
      go 0
    in
    if String.length r >= 12 && String.sub r 0 12 = "exit0: deopt" then
      if contains "guard=" then incr guard else incr boundary
    else incr finish
  done;
  Alcotest.(check bool) "some finish" true (!finish > 10);
  Alcotest.(check bool) "some guard deopts" true (!guard > 10);
  Alcotest.(check bool) "some boundary deopts" true (!boundary > 3)

(* ---------- deterministic multi-trace scenarios ---------- *)

let snap_reg r =
  {
    Ir.frames =
      [
        {
          Ir.snap_code = 1;
          snap_pc = 0;
          snap_locals = [| Ir.S_reg r |];
          snap_stack = [||];
          snap_discard = false;
        };
      ];
    r_virtuals = [||];
  }

let mk_guard ~id gkind resume =
  { Ir.guard_id = id; gkind; resume; fail_count = 0; bridge = None;
    bridgeable = true }

(* r1 = r0 + 1; guard r1 < limit (fused cmp+guard); jump [r1] *)
let counting_loop_ops ~limit =
  [|
    { Ir.opcode =
        Ir.Debug_merge_point
          { dmp_code = 1; dmp_pc = 0; dmp_resume = snap_reg 0 };
      args = [||]; result = -1 };
    { Ir.opcode = Ir.Int_add;
      args = [| Ir.Reg 0; Ir.Const (V.of_int 1) |]; result = 1 };
    { Ir.opcode = Ir.Int_lt;
      args = [| Ir.Reg 1; Ir.Const (V.of_int limit) |]; result = 2 };
    { Ir.opcode = Ir.Guard (mk_guard ~id:9001 Ir.G_true (snap_reg 1));
      args = [| Ir.Reg 2 |]; result = -1 };
    { Ir.opcode = Ir.Jump; args = [| Ir.Reg 1 |]; result = -1 };
  |]

let scenario_loop (exec : executor) =
  let rtc = Mtj_rt.Ctx.create () in
  let jitlog = Jitlog.create () in
  let trace =
    Backend.compile jitlog rtc
      ~kind:(Ir.Loop { loop_code = 1; loop_pc = 0 })
      ~entry_slots:1 (counting_loop_ops ~limit:500)
  in
  let e = exit_of exec rtc jitlog trace [| V.of_int 0 |] in
  observe rtc [ trace ] [ e ]

(* guard fails at [limit]; a bridge is then attached and the cached
   threaded code must be invalidated so the second run jumps into it *)
let scenario_bridge (exec : executor) =
  let rtc = Mtj_rt.Ctx.create () in
  let jitlog = Jitlog.create () in
  let trace =
    Backend.compile jitlog rtc
      ~kind:(Ir.Loop { loop_code = 1; loop_pc = 0 })
      ~entry_slots:1 (counting_loop_ops ~limit:100)
  in
  let e1 = exit_of exec rtc jitlog trace [| V.of_int 0 |] in
  let bridge =
    Backend.compile jitlog rtc
      ~kind:(Ir.Bridge { from_guard = 9001; loop_code = 1; loop_pc = 0 })
      ~entry_slots:1
      [|
        { Ir.opcode = Ir.Int_mul;
          args = [| Ir.Reg 0; Ir.Const (V.of_int 3) |]; result = 1 };
        { Ir.opcode = Ir.Finish; args = [| Ir.Reg 1 |]; result = -1 };
      |]
  in
  Array.iter
    (fun (op : Ir.op) ->
      match op.Ir.opcode with
      | Ir.Guard g -> g.Ir.bridge <- Some bridge
      | _ -> ())
    trace.Ir.ops;
  Ir.invalidate_code trace;
  let e2 = exit_of exec rtc jitlog trace [| V.of_int 0 |] in
  observe rtc [ trace; bridge ] [ e1; e2 ]

(* A adds 3 then chains into B (call_assembler), which doubles and
   finishes; exercises the cross-trace switch in threaded code *)
let scenario_call_assembler (exec : executor) =
  let rtc = Mtj_rt.Ctx.create () in
  let jitlog = Jitlog.create () in
  let b =
    Backend.compile jitlog rtc
      ~kind:(Ir.Loop { loop_code = 2; loop_pc = 0 })
      ~entry_slots:1
      [|
        { Ir.opcode = Ir.Int_mul;
          args = [| Ir.Reg 0; Ir.Const (V.of_int 2) |]; result = 1 };
        { Ir.opcode = Ir.Finish; args = [| Ir.Reg 1 |]; result = -1 };
      |]
  in
  let a =
    Backend.compile jitlog rtc
      ~kind:(Ir.Loop { loop_code = 1; loop_pc = 0 })
      ~entry_slots:1
      [|
        { Ir.opcode =
            Ir.Debug_merge_point
              { dmp_code = 1; dmp_pc = 0; dmp_resume = snap_reg 0 };
          args = [||]; result = -1 };
        { Ir.opcode = Ir.Int_add;
          args = [| Ir.Reg 0; Ir.Const (V.of_int 3) |]; result = 1 };
        { Ir.opcode = Ir.Call_assembler b.Ir.trace_id;
          args = [| Ir.Reg 1 |]; result = -1 };
      |]
  in
  let e = exit_of exec rtc jitlog a [| V.of_int 5 |] in
  observe rtc [ a; b ] [ e ]

(* a hot tier-1 loop exits at its back-edge under the two-tier config *)
let scenario_tiered (exec : executor) =
  let cfg = { Config.two_tier with Config.tier2_threshold = 5 } in
  let rtc = Mtj_rt.Ctx.create ~config:cfg () in
  let jitlog = Jitlog.create () in
  let trace =
    Backend.compile jitlog rtc
      ~kind:(Ir.Loop { loop_code = 1; loop_pc = 0 })
      ~entry_slots:1 ~tier:1 (counting_loop_ops ~limit:500)
  in
  let e = exit_of exec rtc jitlog trace [| V.of_int 0 |] in
  observe rtc [ trace ] [ e ]

(* integer overflow inside a fused op+guard pair *)
let scenario_ovf_fused (exec : executor) =
  let rtc = Mtj_rt.Ctx.create () in
  let jitlog = Jitlog.create () in
  let ops entry_ovf =
    [|
      { Ir.opcode =
          Ir.Debug_merge_point
            { dmp_code = 1; dmp_pc = 0; dmp_resume = snap_reg 0 };
        args = [||]; result = -1 };
      { Ir.opcode = Ir.Int_add;
        args = [| Ir.Reg 0; Ir.Const (V.of_int 1) |]; result = 1 };
      { Ir.opcode =
          Ir.Guard (mk_guard ~id:(9100 + entry_ovf) Ir.G_no_ovf_add (snap_reg 0));
        args = [| Ir.Reg 0; Ir.Const (V.of_int 1) |]; result = -1 };
      { Ir.opcode = Ir.Finish; args = [| Ir.Reg 1 |]; result = -1 };
    |]
  in
  let t_ok =
    Backend.compile jitlog rtc
      ~kind:(Ir.Loop { loop_code = 1; loop_pc = 0 })
      ~entry_slots:1 (ops 0)
  in
  let t_ovf =
    Backend.compile jitlog rtc
      ~kind:(Ir.Loop { loop_code = 1; loop_pc = 1 })
      ~entry_slots:1 (ops 1)
  in
  let e1 = exit_of exec rtc jitlog t_ok [| V.of_int 41 |] in
  let e2 = exit_of exec rtc jitlog t_ovf [| V.of_int max_int |] in
  observe rtc [ t_ok; t_ovf ] [ e1; e2 ]

let check_scenario name scenario =
  Alcotest.(check string) name (scenario Executor.run_ref)
    (scenario Executor.run)

let test_loop () = check_scenario "counting loop" scenario_loop
let test_bridge () = check_scenario "bridge + invalidation" scenario_bridge

let test_call_assembler () =
  check_scenario "call_assembler chain" scenario_call_assembler

let test_tiered () = check_scenario "tier-1 back-edge exit" scenario_tiered
let test_ovf () = check_scenario "fused overflow guard" scenario_ovf_fused

(* ---------- cache accounting (threaded executor only) ---------- *)

let test_cache_accounting () =
  let rtc = Mtj_rt.Ctx.create () in
  let jitlog = Jitlog.create () in
  let trace =
    Backend.compile jitlog rtc
      ~kind:(Ir.Loop { loop_code = 1; loop_pc = 0 })
      ~entry_slots:1 (counting_loop_ops ~limit:10)
  in
  Alcotest.(check int) "compile translates once" 1 trace.Ir.translations;
  Alcotest.(check int) "no hits yet" 0 trace.Ir.cache_hits;
  ignore (Executor.run rtc jitlog ~trace ~entry:[| V.of_int 0 |]);
  ignore (Executor.run rtc jitlog ~trace ~entry:[| V.of_int 0 |]);
  Alcotest.(check int) "two cached entries" 2 trace.Ir.cache_hits;
  Alcotest.(check int) "still one translation" 1 trace.Ir.translations;
  Ir.invalidate_code trace;
  ignore (Executor.run rtc jitlog ~trace ~entry:[| V.of_int 0 |]);
  Alcotest.(check int) "invalidation forces re-translation" 2
    trace.Ir.translations;
  Alcotest.(check int) "a stale entry is not a hit" 2 trace.Ir.cache_hits;
  ignore (Executor.run rtc jitlog ~trace ~entry:[| V.of_int 0 |]);
  Alcotest.(check int) "fresh code is cached again" 3 trace.Ir.cache_hits;
  Alcotest.(check int) "jitlog translations" 2 jitlog.Jitlog.translations;
  Alcotest.(check int) "jitlog hits" 3 jitlog.Jitlog.code_cache_hits

let suite =
  [
    QCheck_alcotest.to_alcotest prop_threaded_identical;
    Alcotest.test_case "generator covers all exits" `Quick
      test_generator_coverage;
    Alcotest.test_case "loop back-edge" `Quick test_loop;
    Alcotest.test_case "bridge attach + cache invalidation" `Quick test_bridge;
    Alcotest.test_case "call_assembler switch" `Quick test_call_assembler;
    Alcotest.test_case "tiered back-edge exit" `Quick test_tiered;
    Alcotest.test_case "fused overflow guard" `Quick test_ovf;
    Alcotest.test_case "code cache accounting" `Quick test_cache_accounting;
  ]
