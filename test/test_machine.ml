(** Unit tests for the simulated machine: predictor, cache, counters,
    engine, phase accounting. *)

open Mtj_core
module Engine = Mtj_machine.Engine
module Predictor = Mtj_machine.Predictor
module Dcache = Mtj_machine.Dcache
module Counters = Mtj_machine.Counters

let test_predictor_learns_constant () =
  let p = Predictor.create () in
  (* always-taken branch: near-perfect after warmup *)
  let misses = ref 0 in
  for _ = 1 to 1000 do
    if not (Predictor.conditional p ~site:42 ~taken:true) then incr misses
  done;
  Alcotest.(check bool) "few misses" true (!misses < 5)

let test_predictor_learns_period () =
  let p = Predictor.create () in
  (* period-3 pattern: the local-history predictor captures it *)
  let misses = ref 0 in
  for i = 1 to 3000 do
    let taken = i mod 3 <> 0 in
    if not (Predictor.conditional p ~site:7 ~taken) then incr misses
  done;
  Alcotest.(check bool)
    (Printf.sprintf "period-3 learned (%d misses)" !misses)
    true (!misses < 60)

let test_predictor_random_hard () =
  let p = Predictor.create () in
  let st = Random.State.make [| 42 |] in
  let misses = ref 0 in
  for _ = 1 to 4000 do
    if not (Predictor.conditional p ~site:9 ~taken:(Random.State.bool st))
    then incr misses
  done;
  (* a random branch should miss a lot *)
  Alcotest.(check bool) "random is hard" true (!misses > 1000)

let test_predictor_indirect_single_target () =
  let p = Predictor.create () in
  let misses = ref 0 in
  for _ = 1 to 500 do
    if not (Predictor.indirect p ~site:5 ~target:33) then incr misses
  done;
  Alcotest.(check bool) "btb learns" true (!misses < 10)

let test_predictor_indirect_periodic () =
  let p = Predictor.create () in
  let misses = ref 0 in
  for i = 1 to 4000 do
    (* a repeating dispatch sequence, as in an interpreted loop body *)
    if not (Predictor.indirect p ~site:5 ~target:(i mod 8)) then incr misses
  done;
  Alcotest.(check bool)
    (Printf.sprintf "path-based indirect (%d misses)" !misses)
    true (!misses < 400)

let test_predictor_reset () =
  let p = Predictor.create () in
  for _ = 1 to 100 do
    ignore (Predictor.conditional p ~site:1 ~taken:true)
  done;
  Predictor.reset p;
  (* first prediction after reset is from initialized state, weakly taken *)
  ignore (Predictor.conditional p ~site:1 ~taken:true)

let test_dcache_hit_after_fill () =
  let c = Dcache.create () in
  Alcotest.(check bool) "miss first" false (Dcache.access c ~addr:0x1000);
  Alcotest.(check bool) "hit second" true (Dcache.access c ~addr:0x1000);
  Alcotest.(check bool) "same line" true (Dcache.access c ~addr:0x1008)

let test_dcache_eviction () =
  let c = Dcache.create ~sets_bits:1 ~ways:2 ~line_bits:6 () in
  (* 2 sets x 2 ways; 3 conflicting lines in set 0 must evict *)
  ignore (Dcache.access c ~addr:0);
  ignore (Dcache.access c ~addr:(128 * 1));
  ignore (Dcache.access c ~addr:(128 * 2));
  Alcotest.(check bool) "evicted lru" false (Dcache.access c ~addr:0)

let test_dcache_counters () =
  let c = Dcache.create () in
  ignore (Dcache.access c ~addr:64);
  ignore (Dcache.access c ~addr:64);
  Alcotest.(check int) "hits" 1 (Dcache.hits c);
  Alcotest.(check int) "misses" 1 (Dcache.misses c)

let test_engine_counts_instructions () =
  let e = Engine.create () in
  Engine.emit e (Cost.make ~alu:5 ~load:3 ());
  Engine.branch e ~site:1 ~taken:true;
  Alcotest.(check int) "insns" 9 (Engine.total_insns e)

let test_engine_budget () =
  let config = Config.with_budget 100 Config.default in
  let e = Engine.create ~config () in
  Alcotest.check_raises "budget" Engine.Budget_exhausted (fun () ->
      for _ = 1 to 50 do
        Engine.emit e (Cost.make ~alu:10 ())
      done)

let test_engine_phase_attribution () =
  let e = Engine.create () in
  Engine.emit e (Cost.make ~alu:10 ());
  Engine.in_phase e Phase.Jit (fun () -> Engine.emit e (Cost.make ~alu:20 ()));
  let c = Engine.counters e in
  Alcotest.(check int) "interp" 10
    (Counters.phase c Phase.Interpreter).Counters.insns;
  Alcotest.(check int) "jit" 20 (Counters.phase c Phase.Jit).Counters.insns

let test_engine_phase_nesting () =
  let e = Engine.create () in
  Engine.push_phase e Phase.Jit;
  Engine.push_phase e Phase.Jit_call;
  Alcotest.(check bool) "inner" true (Engine.current_phase e = Phase.Jit_call);
  Engine.pop_phase e;
  Alcotest.(check bool) "restored" true (Engine.current_phase e = Phase.Jit);
  Engine.pop_phase e;
  Alcotest.(check bool) "outer" true (Engine.current_phase e = Phase.Interpreter)

let test_engine_phase_exception_safety () =
  let e = Engine.create () in
  (try Engine.in_phase e Phase.Gc_minor (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "popped on exn" true
    (Engine.current_phase e = Phase.Interpreter)

let test_engine_listener () =
  let e = Engine.create () in
  let seen = ref [] in
  Engine.add_listener e (fun ~insns:_ a -> seen := a :: !seen);
  Engine.annot e Annot.Dispatch_tick;
  Engine.annot e (Annot.App_marker 7);
  Alcotest.(check int) "two events" 2 (List.length !seen)

let test_engine_annotations_free () =
  let e = Engine.create () in
  Engine.annot e Annot.Dispatch_tick;
  Alcotest.(check int) "no cost" 0 (Engine.total_insns e)

let test_counters_ipc () =
  let e = Engine.create () in
  Engine.set_interp_width e 2.0;
  Engine.emit e (Cost.make ~alu:1000 ());
  let s = Counters.total (Engine.counters e) in
  let ipc = Counters.ipc s in
  Alcotest.(check bool) "ipc near width" true (ipc > 1.9 && ipc <= 2.01)

let test_counters_mpki () =
  let e = Engine.create () in
  Engine.emit e (Cost.make ~alu:999 ());
  (* one never-taken branch initialized weakly-taken: first is a miss *)
  Engine.branch e ~site:77 ~taken:false;
  let s = Counters.total (Engine.counters e) in
  Alcotest.(check bool) "mpki 1" true (Counters.branch_mpki s >= 0.99)

let test_mem_access_counts () =
  let e = Engine.create () in
  Engine.mem_access e ~addr:4096 ~write:false;
  Engine.mem_access e ~addr:4096 ~write:true;
  let s = Counters.total (Engine.counters e) in
  Alcotest.(check int) "loads" 1 s.Counters.loads;
  Alcotest.(check int) "stores" 1 s.Counters.stores;
  Alcotest.(check int) "one miss" 1 s.Counters.cache_misses

let suite =
  [
    Alcotest.test_case "predictor constant" `Quick test_predictor_learns_constant;
    Alcotest.test_case "predictor period-3" `Quick test_predictor_learns_period;
    Alcotest.test_case "predictor random hard" `Quick test_predictor_random_hard;
    Alcotest.test_case "btb single target" `Quick test_predictor_indirect_single_target;
    Alcotest.test_case "btb periodic dispatch" `Quick test_predictor_indirect_periodic;
    Alcotest.test_case "predictor reset" `Quick test_predictor_reset;
    Alcotest.test_case "dcache hit after fill" `Quick test_dcache_hit_after_fill;
    Alcotest.test_case "dcache eviction" `Quick test_dcache_eviction;
    Alcotest.test_case "dcache counters" `Quick test_dcache_counters;
    Alcotest.test_case "engine instruction count" `Quick test_engine_counts_instructions;
    Alcotest.test_case "engine budget" `Quick test_engine_budget;
    Alcotest.test_case "engine phase attribution" `Quick test_engine_phase_attribution;
    Alcotest.test_case "engine phase nesting" `Quick test_engine_phase_nesting;
    Alcotest.test_case "engine phase exn safety" `Quick test_engine_phase_exception_safety;
    Alcotest.test_case "engine listener" `Quick test_engine_listener;
    Alcotest.test_case "annotations are free" `Quick test_engine_annotations_free;
    Alcotest.test_case "counters ipc" `Quick test_counters_ipc;
    Alcotest.test_case "counters mpki" `Quick test_counters_mpki;
    Alcotest.test_case "mem access counts" `Quick test_mem_access_counts;
  ]
