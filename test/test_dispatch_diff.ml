(** Differential test of the threaded-dispatch interpreter tier
    ([Config.threaded_interp], translate-once handler-closure arrays)
    against the reference decode-and-match loop ([Step.step_ref]).

    Whole programs run twice — once per dispatch mode — through real VMs
    with a {!Mtj_obs.Sink} attached, for both languages.  Everything
    observable must be BYTE-IDENTICAL: program output, outcome status
    (including budget-exhaustion points landed mid-run), per-phase
    counters (float cycles compared exactly via [%.17g]), engine totals,
    the sink's event stream (phase crossings interpreter → trace →
    blackhole included) and counter samples, and the jitlog's
    compilation statistics.  Only the threaded tier's own cache counters
    ([interp_translations]/[threaded_code_hits]) may differ — they are
    asserted separately: positive under the threaded loop, zero under
    the reference loop.

    Programs come from a deterministic pool plus a QCheck generator of
    random (terminating-by-construction) pylite sources and randomly
    parameterized rklite templates, swept across JIT modes and
    budgets. *)

module Engine = Mtj_machine.Engine
module Counters = Mtj_machine.Counters
module Sink = Mtj_obs.Sink
module Phase = Mtj_core.Phase
module Config = Mtj_core.Config
module Jitlog = Mtj_rjit.Jitlog
module Driver = Mtj_rjit.Driver

type lang = Py | Rk

(* ---------- digesting a run ---------- *)

let snap_str (s : Counters.snapshot) =
  Printf.sprintf "i=%d c=%.17g b=%d bm=%d l=%d s=%d cm=%d" s.Counters.insns
    s.Counters.cycles s.Counters.branches s.Counters.branch_misses
    s.Counters.loads s.Counters.stores s.Counters.cache_misses

let counters_digest eng =
  let c = Engine.counters eng in
  String.concat "\n"
    (List.map
       (fun p -> Phase.name p ^ ": " ^ snap_str (Counters.phase c p))
       Phase.all
    @ [
        "total " ^ snap_str (Counters.total c);
        Printf.sprintf "eng i=%d cy=%.17g" (Engine.total_insns eng)
          (Engine.total_cycles eng);
      ])

let events_digest sink =
  let buf = Buffer.create 1024 in
  Sink.iter_events sink (fun e ->
      let name =
        match e.Sink.kind with
        | Sink.Phase_begin p -> "push:" ^ Phase.name p
        | Sink.Phase_end p -> "pop:" ^ Phase.name p
        | Sink.Trace_enter id -> Printf.sprintf "trace_enter:%d" id
        | Sink.Trace_exit id -> Printf.sprintf "trace_exit:%d" id
        | Sink.Guard_fail id -> Printf.sprintf "guard_fail:%d" id
        | Sink.Trace_compile id -> Printf.sprintf "trace_compile:%d" id
        | Sink.Trace_abort cr -> Printf.sprintf "trace_abort:%d" cr
        | Sink.Marker n -> Printf.sprintf "marker:%d" n
      in
      Buffer.add_string buf
        (Printf.sprintf "%s@%d cy=%.17g\n" name e.Sink.at_insns e.Sink.at_cycles));
  Buffer.contents buf

let samples_digest sink =
  String.concat "\n"
    (List.map
       (fun (s : Sink.sample) ->
         Printf.sprintf "@%d cy=%.17g ticks=%d %s" s.Sink.s_insns
           s.Sink.s_cycles s.Sink.s_ticks (snap_str s.Sink.s_counters))
       (Sink.samples sink))

(* compile/run statistics that must agree between dispatch modes; the
   threaded tier's own counters are deliberately excluded (asserted
   separately) *)
let jitlog_digest (jl : Jitlog.t) =
  Printf.sprintf
    "traces=%d aborts=%d deopts=%d bridges=%d blacklisted=%d retiers=%d \
     translations=%d cache_hits=%d ir=%d dyn_ir=%d"
    (Jitlog.num_traces jl) jl.Jitlog.aborts jl.Jitlog.deopts
    jl.Jitlog.bridges_attached jl.Jitlog.blacklisted jl.Jitlog.retiers
    jl.Jitlog.translations jl.Jitlog.code_cache_hits
    (Jitlog.total_ir_compiled jl)
    (Jitlog.total_dynamic_ir jl)

let outcome_str = function
  | Driver.Completed _ -> "ok"
  | Driver.Budget_exceeded -> "budget"
  | Driver.Runtime_error e -> "error: " ^ e

type run = { digest : string; jitlog : Jitlog.t }

let observe ~lang ~config src : run =
  match lang with
  | Py ->
      let vm = Mtj_pylite.Vm.create ~config () in
      let eng = Mtj_pylite.Vm.engine vm in
      let sink = Sink.attach ~capacity:(1 lsl 16) ~counter_window:256 eng in
      let outcome = Mtj_pylite.Vm.run_source vm src in
      Sink.finalize sink;
      {
        digest =
          String.concat "\n---\n"
            [
              outcome_str outcome;
              Mtj_pylite.Vm.output vm;
              counters_digest eng;
              events_digest sink;
              samples_digest sink;
              jitlog_digest (Mtj_pylite.Vm.jitlog vm);
            ];
        jitlog = Mtj_pylite.Vm.jitlog vm;
      }
  | Rk ->
      let vm = Mtj_rklite.Kvm.create ~config () in
      let eng = Mtj_rklite.Kvm.engine vm in
      let sink = Sink.attach ~capacity:(1 lsl 16) ~counter_window:256 eng in
      let outcome = Mtj_rklite.Kvm.run_source vm src in
      Sink.finalize sink;
      {
        digest =
          String.concat "\n---\n"
            [
              outcome_str outcome;
              Mtj_rklite.Kvm.output vm;
              counters_digest eng;
              events_digest sink;
              samples_digest sink;
              jitlog_digest (Mtj_rklite.Kvm.jitlog vm);
            ];
        jitlog = Mtj_rklite.Kvm.jitlog vm;
      }

let with_threaded b (c : Config.t) = { c with Config.threaded_interp = b }

(* run both dispatch modes and require byte-identical digests, plus the
   cache-counter split: the threaded loop translates, the reference loop
   never touches the cache *)
let check_diff name ~lang ~config src =
  let t = observe ~lang ~config:(with_threaded true config) src in
  let r = observe ~lang ~config:(with_threaded false config) src in
  Alcotest.(check string) name r.digest t.digest;
  Alcotest.(check bool)
    (name ^ ": threaded run translated code")
    true
    (t.jitlog.Jitlog.interp_translations > 0);
  Alcotest.(check int)
    (name ^ ": reference run never translates")
    0 r.jitlog.Jitlog.interp_translations;
  Alcotest.(check int)
    (name ^ ": reference run never hits the cache")
    0 r.jitlog.Jitlog.threaded_code_hits

(* ---------- deterministic programs ---------- *)

(* hot loop, compiled trace, then a guard that starts failing: exercises
   interpreter → tracing → jit → blackhole → interpreter crossings *)
let py_deopt =
  "def f(n):\n\
  \    s = 0\n\
  \    for i in range(n):\n\
  \        if i < 1500:\n\
  \            s = s + i\n\
  \        else:\n\
  \            s = s + i * 2\n\
  \    return s\n\
   print(f(3000))\n"

let py_calls =
  "def sq(x):\n\
  \    return x * x\n\
   def f(n):\n\
  \    s = 0\n\
  \    for i in range(n):\n\
  \        s = (s + sq(i)) % 9973\n\
  \    return s\n\
   print(f(2500))\n"

let py_nested =
  "def f(n):\n\
  \    s = 0\n\
  \    for i in range(n):\n\
  \        for j in range(10):\n\
  \            s = s + i - j\n\
  \    return s\n\
   print(f(400))\n"

let py_datatypes =
  "xs = []\n\
   for i in range(300):\n\
  \    xs = xs + [i * i]\n\
   d = {}\n\
   d[1] = len(xs)\n\
   print(d[1])\n\
   print(xs[299])\n"

let rk_tail =
  "(define (loop i acc)\n\
  \  (if (< i 6000) (loop (+ i 1) (+ acc i)) acc))\n\
   (display (loop 0 0))\n\
   (newline)\n"

let rk_deopt =
  "(define (step i acc)\n\
  \  (if (< i 1500) (+ acc i) (+ acc (* i 2))))\n\
   (define (loop i acc)\n\
  \  (if (< i 3000) (loop (+ i 1) (step i acc)) acc))\n\
   (display (loop 0 0))\n\
   (newline)\n"

let rk_lists =
  "(define (build i acc)\n\
  \  (if (< i 400) (build (+ i 1) (cons i acc)) acc))\n\
   (define (sum xs acc)\n\
  \  (if (null? xs) acc (sum (cdr xs) (+ acc (car xs)))))\n\
   (display (sum (build 0 '()) 0))\n\
   (newline)\n"

let deterministic_pool =
  [
    ("py deopt crossing", Py, py_deopt);
    ("py calls", Py, py_calls);
    ("py nested loops", Py, py_nested);
    ("py datatypes", Py, py_datatypes);
    ("rk tailcall loop", Rk, rk_tail);
    ("rk deopt crossing", Rk, rk_deopt);
    ("rk lists", Rk, rk_lists);
  ]

let configs =
  [
    ("jit", Config.default);
    ("nojit", Config.no_jit);
    ("2tier", Config.two_tier);
  ]

let test_deterministic () =
  List.iter
    (fun (name, lang, src) ->
      List.iter
        (fun (cname, base) ->
          check_diff
            (Printf.sprintf "%s [%s]" name cname)
            ~lang
            ~config:(Config.with_budget 30_000_000 base)
            src)
        configs)
    deterministic_pool

let test_budget_exhaustion () =
  (* small budgets land the exhaustion point mid-run — inside the
     threaded loop, inside compiled traces, inside the JIT portal — and
     the stop point must be identical in both modes *)
  List.iter
    (fun budget ->
      List.iter
        (fun (name, lang, src) ->
          check_diff
            (Printf.sprintf "%s [budget %d]" name budget)
            ~lang
            ~config:(Config.with_budget budget Config.default)
            src)
        deterministic_pool)
    [ 1_000; 10_000; 100_000 ]

(* ---------- random programs ---------- *)

(* pylite: terminating by construction (for-range over constants only);
   division-free arithmetic plus [%] by positive constants *)
let gen_py_program rng =
  let buf = Buffer.create 256 in
  let vars = [| "a"; "b"; "c" |] in
  let var () = vars.(Random.State.int rng 3) in
  let rec expr depth =
    if depth = 0 then
      if Random.State.bool rng then var ()
      else string_of_int (Random.State.int rng 20)
    else
      match Random.State.int rng 5 with
      | 0 -> Printf.sprintf "(%s + %s)" (expr (depth - 1)) (expr (depth - 1))
      | 1 -> Printf.sprintf "(%s - %s)" (expr (depth - 1)) (expr (depth - 1))
      | 2 -> Printf.sprintf "(%s * %s)" (expr (depth - 1)) (expr (depth - 1))
      | 3 ->
          Printf.sprintf "(%s %% %d)" (expr (depth - 1))
            (1 + Random.State.int rng 97)
      | _ -> Printf.sprintf "sq(%s)" (expr (depth - 1))
  in
  Buffer.add_string buf "def sq(x):\n    return x * x\n";
  Buffer.add_string buf "a = 1\nb = 2\nc = 3\n";
  let stmt indent =
    let pad = String.make indent ' ' in
    match Random.State.int rng 3 with
    | 0 -> Printf.sprintf "%s%s = %s\n" pad (var ()) (expr 2)
    | 1 ->
        Printf.sprintf "%sif %s < %s:\n%s    %s = %s\n%selse:\n%s    %s = %s\n"
          pad (var ()) (expr 1) pad (var ()) (expr 2) pad pad (var ()) (expr 2)
    | _ ->
        Printf.sprintf "%sfor i%d in range(%d):\n%s    %s = %s + i%d\n" pad
          indent
          (2 + Random.State.int rng 30)
          pad (var ()) (var ()) indent
  in
  let n_top = 2 + Random.State.int rng 4 in
  for _ = 1 to n_top do
    if Random.State.int rng 3 = 0 then begin
      (* a loop wrapping further statements, long enough to go hot *)
      Buffer.add_string buf
        (Printf.sprintf "for k in range(%d):\n" (50 + Random.State.int rng 400));
      let body = 1 + Random.State.int rng 2 in
      for _ = 1 to body do
        Buffer.add_string buf (stmt 4)
      done
    end
    else Buffer.add_string buf (stmt 0)
  done;
  Buffer.add_string buf "print(a + b + c)\n";
  Buffer.contents buf

(* rklite: a tail-recursive loop template with random constants and a
   random accumulator expression *)
let gen_rk_program rng =
  let iters = 100 + Random.State.int rng 4000 in
  let flip = Random.State.int rng iters in
  let m = 1 + Random.State.int rng 97 in
  Printf.sprintf
    "(define (loop i acc)\n\
    \  (if (< i %d)\n\
    \      (loop (+ i 1)\n\
    \            (if (< i %d) (+ acc (* i %d)) (remainder (+ acc i) %d)))\n\
    \      acc))\n\
     (display (loop 0 0))\n\
     (newline)\n"
    iters flip
    (1 + Random.State.int rng 5)
    m

let prop_random_programs =
  QCheck.Test.make ~count:40
    ~name:"threaded dispatch is byte-identical on random programs"
    (QCheck.make QCheck.Gen.(int_range 1 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed; 0xD15C |] in
      let lang, src =
        if Random.State.bool rng then (Py, gen_py_program rng)
        else (Rk, gen_rk_program rng)
      in
      let base =
        [| Config.default; Config.no_jit; Config.two_tier |].(Random.State.int
                                                                rng 3)
      in
      let budget =
        match Random.State.int rng 3 with
        | 0 -> 2_000 + Random.State.int rng 50_000
        | _ -> 10_000_000
      in
      let config = Config.with_budget budget base in
      let t = observe ~lang ~config:(with_threaded true config) src in
      let r = observe ~lang ~config:(with_threaded false config) src in
      if t.digest <> r.digest then
        QCheck.Test.fail_reportf
          "seed %d diverged on:\n%s\n--- reference:\n%s\n--- threaded:\n%s"
          seed src r.digest t.digest
      else true)

(* ---------- satellite checks ---------- *)

let test_builtin_of_tag_bounds () =
  let module Builtin = Mtj_rjit.Builtin in
  let raises i =
    match Builtin.of_tag i with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "negative tag raises" true (raises (-1));
  Alcotest.(check bool) "huge tag raises" true (raises 100_000);
  (* every valid builtin round-trips through its tag *)
  List.iter
    (fun b ->
      Alcotest.(check bool)
        (Builtin.name b ^ " round-trips")
        true
        (Builtin.of_tag (Builtin.tag b) == b))
    Builtin.all

let test_stale_code_ref_fails_at_translation () =
  (* hand-patch a compiled program so an unreachable MAKE_FUNCTION
     carries a dangling code_ref.  The reference loop never executes the
     instruction and completes; the threaded translator validates every
     code_ref up front and must fail at translation, not mid-run. *)
  let patched ~threaded =
    (* each VM compiles its own copy: Vm.create resets the code table *)
    let vm =
      Mtj_pylite.Vm.create ~config:(with_threaded threaded Config.default) ()
    in
    let code =
      Mtj_pylite.Vm.compile
        "def g():\n\
        \    return 1\n\
         if 1 < 0:\n\
        \    def h():\n\
        \        return 2\n\
         print(g())\n"
    in
    (* retarget the MAKE_FUNCTION for h (on the dead branch) at a code
       id that was never registered *)
    let seen = ref 0 in
    Array.iteri
      (fun i instr ->
        match instr with
        | Mtj_pylite.Bytecode.MAKE_FUNCTION { fname = "h"; arity; _ } ->
            incr seen;
            code.Mtj_pylite.Bytecode.instrs.(i) <-
              Mtj_pylite.Bytecode.MAKE_FUNCTION
                { code_ref = 987_654; fname = "h"; arity }
        | _ -> ())
      code.Mtj_pylite.Bytecode.instrs;
    Alcotest.(check int) "patched the dead MAKE_FUNCTION" 1 !seen;
    (vm, code)
  in
  (* reference loop: the dangling ref is never reached, the run completes *)
  let vm, code = patched ~threaded:false in
  (match Mtj_pylite.Vm.run_code vm code with
  | Driver.Completed _ -> ()
  | o -> Alcotest.failf "reference run should complete, got %s" (outcome_str o));
  Alcotest.(check string) "program ran" "1\n" (Mtj_pylite.Vm.output vm);
  (* threaded loop: translating the toplevel code validates every ref *)
  let vm2, stale = patched ~threaded:true in
  match Mtj_pylite.Vm.run_code vm2 stale with
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        "translation error names the code_ref" true
        (String.length msg > 0);
      Alcotest.(check string)
        "nothing executed before the failure" "" (Mtj_pylite.Vm.output vm2)
  | o ->
      Alcotest.failf "threaded run should fail at translation, got %s"
        (outcome_str o)

let suite =
  [
    Alcotest.test_case "deterministic programs x configs" `Quick
      test_deterministic;
    Alcotest.test_case "budget exhaustion points" `Quick
      test_budget_exhaustion;
    Alcotest.test_case "Builtin.of_tag bounds" `Quick
      test_builtin_of_tag_bounds;
    Alcotest.test_case "stale code_ref fails at translation" `Quick
      test_stale_code_ref_fails_at_translation;
    QCheck_alcotest.to_alcotest prop_random_programs;
  ]
