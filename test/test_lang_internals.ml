(** Unit tests for the language frontends: pylite lexer/parser/compiler
    and the rklite reader/compiler. *)

module L = Mtj_pylite.Lexer
module P = Mtj_pylite.Parser
module A = Mtj_pylite.Ast
module BC = Mtj_pylite.Bytecode
module KR = Mtj_rklite.Reader

(* --- pylite lexer --- *)

let toks src = L.tokenize src

let test_lex_simple () =
  match toks "x = 1 + 2\n" with
  | [ L.NAME "x"; L.OP "="; L.INT 1; L.OP "+"; L.INT 2; L.NEWLINE; L.EOF ] ->
      ()
  | other -> Alcotest.failf "unexpected tokens (%d)" (List.length other)

let test_lex_indentation () =
  let t = toks "if x:\n    y = 1\nz = 2\n" in
  let indents = List.filter (( = ) L.INDENT) t in
  let dedents = List.filter (( = ) L.DEDENT) t in
  Alcotest.(check int) "one indent" 1 (List.length indents);
  Alcotest.(check int) "one dedent" 1 (List.length dedents)

let test_lex_nested_dedents () =
  let t = toks "if a:\n    if b:\n        x = 1\ny = 2\n" in
  Alcotest.(check int) "two dedents" 2
    (List.length (List.filter (( = ) L.DEDENT) t))

let test_lex_floats () =
  (match toks "x = 1.5\n" with
  | [ _; _; L.FLOAT f; _; _ ] -> Alcotest.(check (float 0.0)) "1.5" 1.5 f
  | _ -> Alcotest.fail "float");
  match toks "y = 2e3\n" with
  | [ _; _; L.FLOAT f; _; _ ] -> Alcotest.(check (float 0.0)) "2e3" 2000.0 f
  | _ -> Alcotest.fail "exponent float"

let test_lex_strings () =
  (match toks "s = \"a\\nb\"\n" with
  | [ _; _; L.STRING s; _; _ ] -> Alcotest.(check string) "escape" "a\nb" s
  | _ -> Alcotest.fail "string");
  match toks "s = 'it'\n" with
  | [ _; _; L.STRING s; _; _ ] -> Alcotest.(check string) "single" "it" s
  | _ -> Alcotest.fail "single-quoted"

let test_lex_comments_blank_lines () =
  let t = toks "# a comment\n\nx = 1  # trailing\n" in
  Alcotest.(check int) "one name" 1
    (List.length (List.filter (function L.NAME _ -> true | _ -> false) t))

let test_lex_multichar_ops () =
  match toks "x //= 2 ** 3\n" with
  | [ _; L.OP "//="; _; L.OP "**"; _; _; _ ] -> ()
  | _ -> Alcotest.fail "multichar operators"

let test_lex_paren_continuation () =
  (* newlines inside brackets do not end the logical line *)
  let t = toks "x = [1,\n     2]\n" in
  Alcotest.(check int) "one newline" 1
    (List.length (List.filter (( = ) L.NEWLINE) t))

let test_lex_error () =
  Alcotest.check_raises "bad char" (L.Syntax_error "unexpected character '?'")
    (fun () -> ignore (toks "x ? y\n"))

(* --- pylite parser --- *)

let parse1 src =
  match P.parse src with [ s ] -> s | l -> Alcotest.failf "got %d stmts" (List.length l)

let test_parse_precedence () =
  match parse1 "x = 1 + 2 * 3\n" with
  | A.Assign (A.T_name "x", A.Bin (A.Add, A.Int_lit 1, A.Bin (A.Mult, _, _)))
    ->
      ()
  | _ -> Alcotest.fail "precedence"

let test_parse_unary_power () =
  (match parse1 "x = -y\n" with
  | A.Assign (_, A.Un (A.Neg, A.Name "y")) -> ()
  | _ -> Alcotest.fail "unary");
  match parse1 "x = 2 ** 3 ** 2\n" with
  (* right-associative *)
  | A.Assign (_, A.Bin (A.Pow, A.Int_lit 2, A.Bin (A.Pow, _, _))) -> ()
  | _ -> Alcotest.fail "pow assoc"

let test_parse_chained_cmp () =
  match parse1 "x = 1 < y < 3\n" with
  | A.Assign (_, A.Bool_op (`And, A.Cmp (Mtj_rjit.Ops_intf.Lt, _, _), A.Cmp _))
    ->
      ()
  | _ -> Alcotest.fail "chain"

let test_parse_call_attr_chain () =
  match parse1 "x = a.b.c(1)[2]\n" with
  | A.Assign
      (_, A.Subscr (A.Call (A.Attr (A.Attr (A.Name "a", "b"), "c"), [ _ ]), _))
    ->
      ()
  | _ -> Alcotest.fail "postfix chain"

let test_parse_tuple_assign () =
  match parse1 "a, b = b, a\n" with
  | A.Assign (A.T_tuple [ "a"; "b" ], A.Tuple_lit [ A.Name "b"; A.Name "a" ])
    ->
      ()
  | _ -> Alcotest.fail "tuple assignment"

let test_parse_if_elif_else () =
  match parse1 "if a:\n    pass\nelif b:\n    pass\nelse:\n    pass\n" with
  | A.If ([ (A.Name "a", _); (A.Name "b", _) ], [ A.Pass ]) -> ()
  | _ -> Alcotest.fail "if/elif/else"

let test_parse_def_and_class () =
  match P.parse "def f(a, b):\n    return a\nclass C(B):\n    pass\n" with
  | [ A.Def ("f", [ "a"; "b" ], [ A.Return (Some _) ]);
      A.Class ("C", Some "B", [ A.Pass ]) ] ->
      ()
  | _ -> Alcotest.fail "def/class"

let test_parse_slice () =
  match parse1 "x = l[1:2]\n" with
  | A.Assign (_, A.Slice (A.Name "l", Some (A.Int_lit 1), Some (A.Int_lit 2)))
    ->
      ()
  | _ -> Alcotest.fail "slice"

let test_parse_not_in_is_not () =
  (match parse1 "x = a not in b\n" with
  | A.Assign (_, A.Cmp (Mtj_rjit.Ops_intf.Not_in, _, _)) -> ()
  | _ -> Alcotest.fail "not in");
  match parse1 "x = a is not b\n" with
  | A.Assign (_, A.Cmp (Mtj_rjit.Ops_intf.Is_not, _, _)) -> ()
  | _ -> Alcotest.fail "is not"

let test_parse_error_reported () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (P.parse "def f(:\n    pass\n");
       false
     with P.Syntax_error _ -> true)

(* --- pylite compiler --- *)

let compile src = Mtj_pylite.Compiler.compile_source src

let test_compile_loop_headers () =
  let code = compile "def f(n):\n    s = 0\n    for i in range(n):\n        s = s + i\n    return s\n" in
  (* the module code itself has no loops *)
  Alcotest.(check bool) "module has no headers" true
    (Array.for_all not code.BC.headers)

(* resolve the code object of the first function a module defines *)
let fn_code_of_module (mcode : BC.code) =
  let found = ref None in
  Array.iter
    (function
      | BC.MAKE_FUNCTION { code_ref; _ } when !found = None ->
          found := Some code_ref
      | _ -> ())
    mcode.BC.instrs;
  Mtj_pylite.Code_table.lookup (Option.get !found)

let test_compile_for_range_lowering () =
  (* for-range loops compile to FOR_RANGE, not to iterator objects *)
  let m = compile "def f(n):\n    for i in range(n):\n        pass\n" in
  let fcode = fn_code_of_module m in
  Alcotest.(check bool) "has FOR_RANGE" true
    (Array.exists
       (function BC.FOR_RANGE _ -> true | _ -> false)
       fcode.BC.instrs);
  Alcotest.(check bool) "has a loop header" true
    (Array.exists (fun b -> b) fcode.BC.headers)

let test_compile_stack_depth_positive () =
  let code = compile "x = (1 + 2) * (3 + (4 * 5))\n" in
  Alcotest.(check bool) "stacksize sane" true (code.BC.stacksize >= 3)

(* --- rklite reader --- *)

let test_reader_atoms () =
  match KR.read_all "(+ 1 2.5 \"s\" #t #\\a sym)" with
  | [ KR.Slist
        [ KR.Atom "+"; KR.Num 1; KR.Fnum 2.5; KR.Strlit "s"; KR.Atom "#t";
          KR.Strlit "a"; KR.Atom "sym" ] ] ->
      ()
  | _ -> Alcotest.fail "atoms"

let test_reader_quote_sugar () =
  match KR.read_all "'foo" with
  | [ KR.Slist [ KR.Atom "quote"; KR.Atom "foo" ] ] -> ()
  | _ -> Alcotest.fail "quote"

let test_reader_nesting_and_comments () =
  match KR.read_all "; comment\n(a (b [c]) d)" with
  | [ KR.Slist [ KR.Atom "a"; KR.Slist [ KR.Atom "b"; KR.Slist [ KR.Atom "c" ] ]; KR.Atom "d" ] ] ->
      ()
  | _ -> Alcotest.fail "nesting"

let test_reader_negative_numbers () =
  match KR.read_all "(-5 -2.5)" with
  | [ KR.Slist [ KR.Num (-5); KR.Fnum f ] ] when f = -2.5 -> ()
  | _ -> Alcotest.fail "negatives"

let test_reader_unclosed () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (KR.read_all "(a (b)");
       false
     with KR.Syntax_error _ -> true)

(* --- rklite compiler --- *)

let test_kcompile_tailjump () =
  let code =
    Mtj_rklite.Kcompiler.compile_source
      "(define (f i) (if (< i 10) (f (+ i 1)) i)) (display (f 0))"
  in
  ignore code;
  (* the registered function code for f contains a self tail jump *)
  let found = ref false in
  for id = code.Mtj_rklite.Kbytecode.id - 5 to code.Mtj_rklite.Kbytecode.id do
    match Mtj_rklite.Kcode_table.lookup id with
    | c ->
        if
          Array.exists
            (function Mtj_rklite.Kbytecode.K_TAILJUMP _ -> true | _ -> false)
            c.Mtj_rklite.Kbytecode.instrs
        then found := true
    | exception _ -> ()
  done;
  Alcotest.(check bool) "self tail call becomes a jump" true !found

let test_kcompile_closure_captures () =
  let code =
    Mtj_rklite.Kcompiler.compile_source
      "(define (mk k) (lambda (x) (+ x k))) (display ((mk 1) 2))"
  in
  ignore code;
  let found = ref false in
  for id = code.Mtj_rklite.Kbytecode.id - 5 to code.Mtj_rklite.Kbytecode.id do
    match Mtj_rklite.Kcode_table.lookup id with
    | c -> if c.Mtj_rklite.Kbytecode.ncaptured > 0 then found := true
    | exception _ -> ()
  done;
  Alcotest.(check bool) "a code object captures" true !found

let suite =
  [
    Alcotest.test_case "lex simple" `Quick test_lex_simple;
    Alcotest.test_case "lex indentation" `Quick test_lex_indentation;
    Alcotest.test_case "lex nested dedents" `Quick test_lex_nested_dedents;
    Alcotest.test_case "lex floats" `Quick test_lex_floats;
    Alcotest.test_case "lex strings" `Quick test_lex_strings;
    Alcotest.test_case "lex comments/blank lines" `Quick test_lex_comments_blank_lines;
    Alcotest.test_case "lex multichar ops" `Quick test_lex_multichar_ops;
    Alcotest.test_case "lex paren continuation" `Quick test_lex_paren_continuation;
    Alcotest.test_case "lex error" `Quick test_lex_error;
    Alcotest.test_case "parse precedence" `Quick test_parse_precedence;
    Alcotest.test_case "parse unary/power" `Quick test_parse_unary_power;
    Alcotest.test_case "parse chained comparison" `Quick test_parse_chained_cmp;
    Alcotest.test_case "parse postfix chain" `Quick test_parse_call_attr_chain;
    Alcotest.test_case "parse tuple assignment" `Quick test_parse_tuple_assign;
    Alcotest.test_case "parse if/elif/else" `Quick test_parse_if_elif_else;
    Alcotest.test_case "parse def/class" `Quick test_parse_def_and_class;
    Alcotest.test_case "parse slice" `Quick test_parse_slice;
    Alcotest.test_case "parse not-in / is-not" `Quick test_parse_not_in_is_not;
    Alcotest.test_case "parse error reported" `Quick test_parse_error_reported;
    Alcotest.test_case "compile loop headers" `Quick test_compile_loop_headers;
    Alcotest.test_case "compile FOR_RANGE lowering" `Quick test_compile_for_range_lowering;
    Alcotest.test_case "compile stack depth" `Quick test_compile_stack_depth_positive;
    Alcotest.test_case "reader atoms" `Quick test_reader_atoms;
    Alcotest.test_case "reader quote sugar" `Quick test_reader_quote_sugar;
    Alcotest.test_case "reader nesting/comments" `Quick test_reader_nesting_and_comments;
    Alcotest.test_case "reader negative numbers" `Quick test_reader_negative_numbers;
    Alcotest.test_case "reader unclosed" `Quick test_reader_unclosed;
    Alcotest.test_case "kcompile tail jump" `Quick test_kcompile_tailjump;
    Alcotest.test_case "kcompile closures" `Quick test_kcompile_closure_captures;
  ]
