(** Tests for the cross-layer instrumentation: the annotation stream's
    phase accounting must agree with the engine's own counters, the rate
    sampler must count exactly the dispatch ticks, and AOT attribution
    must name the right functions. *)

open Mtj_core
module Engine = Mtj_machine.Engine
module Counters = Mtj_machine.Counters

let test_phase_tracker_matches_counters () =
  let e = Engine.create () in
  let pt = Mtj_pintool.Phase_tracker.attach e in
  Engine.emit e (Cost.make ~alu:100 ());
  Engine.in_phase e Phase.Jit (fun () ->
      Engine.emit e (Cost.make ~alu:250 ());
      Engine.in_phase e Phase.Gc_minor (fun () ->
          Engine.emit e (Cost.make ~alu:70 ())));
  Engine.emit e (Cost.make ~alu:30 ());
  Mtj_pintool.Phase_tracker.finalize pt;
  let counters = Engine.counters e in
  List.iter
    (fun p ->
      Alcotest.(check int) (Phase.name p)
        (Counters.phase counters p).Counters.insns
        (Mtj_pintool.Phase_tracker.phase_insns pt p))
    Phase.all

let test_phase_tracker_on_benchmark () =
  (* the independent annotation-stream accounting must agree with the
     hardware-counter accounting on a real JIT run *)
  let config = Config.with_budget 10_000_000 Config.default in
  let vm = Mtj_pylite.Vm.create ~config () in
  let e = Mtj_pylite.Vm.engine vm in
  let pt = Mtj_pintool.Phase_tracker.attach e in
  let src =
    "def f(n):\n    s = 0\n    for i in range(n):\n        s = s + i * i\n    return s\nprint(f(3000))\n"
  in
  ignore (Mtj_pylite.Vm.run_source vm src);
  Mtj_pintool.Phase_tracker.finalize pt;
  let counters = Engine.counters e in
  List.iter
    (fun p ->
      Alcotest.(check int) (Phase.name p)
        (Counters.phase counters p).Counters.insns
        (Mtj_pintool.Phase_tracker.phase_insns pt p))
    Phase.all;
  (* a JIT run must actually have spent most time in the Jit phase *)
  Alcotest.(check bool) "jit dominates" true
    (Mtj_pintool.Phase_tracker.fraction pt Phase.Jit > 0.5)

let test_timeline_shows_warmup () =
  let config = Config.with_budget 10_000_000 Config.default in
  let vm = Mtj_pylite.Vm.create ~config () in
  let pt =
    Mtj_pintool.Phase_tracker.attach ~bucket_insns:20_000
      (Mtj_pylite.Vm.engine vm)
  in
  ignore
    (Mtj_pylite.Vm.run_source vm
       "def f(n):\n    s = 0\n    for i in range(n):\n        s = s + i\n    return s\nprint(f(20000))\n");
  Mtj_pintool.Phase_tracker.finalize pt;
  let tl = Mtj_pintool.Phase_tracker.timeline pt in
  Alcotest.(check bool) "has buckets" true (Array.length tl > 3);
  let dominant bucket =
    Array.fold_left
      (fun (bp, bf) (p, f) -> if f > bf then (p, f) else (bp, bf))
      (Phase.Interpreter, 0.0) bucket
  in
  (* warmup: the first bucket is interpreter-dominated, a later one JIT *)
  Alcotest.(check bool) "starts interpreting" true
    (fst (dominant tl.(0)) = Phase.Interpreter);
  Alcotest.(check bool) "ends jitting" true
    (fst (dominant tl.(Array.length tl - 2)) = Phase.Jit)

let test_rate_sampler_counts_ticks () =
  let e = Engine.create () in
  let rs = Mtj_pintool.Rate_sampler.attach ~window:100 e in
  for _ = 1 to 57 do
    Engine.emit e (Cost.make ~alu:10 ());
    Engine.annot e Annot.Dispatch_tick
  done;
  Mtj_pintool.Rate_sampler.finalize rs;
  Alcotest.(check int) "ticks" 57 (Mtj_pintool.Rate_sampler.ticks rs);
  let samples = Mtj_pintool.Rate_sampler.samples rs in
  Alcotest.(check bool) "has samples" true (Array.length samples > 2);
  (* cumulative ticks are monotone *)
  let mono = ref true in
  Array.iteri
    (fun i (_, k) -> if i > 0 && k < snd samples.(i - 1) then mono := false)
    samples;
  Alcotest.(check bool) "monotone" true !mono

let test_rate_sampler_work_invariant () =
  (* total ticks equal the number of bytecodes executed: the same program
     on interpreter vs JIT completes the same number of dispatch ticks
     (the paper's "independent measure of work") *)
  let src =
    "def f(n):\n    s = 0\n    for i in range(n):\n        s = s + i\n    return s\nprint(f(4000))\n"
  in
  let ticks config =
    let vm = Mtj_pylite.Vm.create ~config () in
    let rs = Mtj_pintool.Rate_sampler.attach (Mtj_pylite.Vm.engine vm) in
    ignore (Mtj_pylite.Vm.run_source vm src);
    Mtj_pintool.Rate_sampler.finalize rs;
    Mtj_pintool.Rate_sampler.ticks rs
  in
  let t_interp = ticks (Config.with_budget 50_000_000 Config.no_jit) in
  let t_jit = ticks (Config.with_budget 50_000_000 Config.default) in
  (* deoptimized bytecodes are re-executed (and re-counted), so the two
     measures agree only up to the handful of deopts *)
  let delta = abs (t_jit - t_interp) in
  Alcotest.(check bool)
    (Printf.sprintf "work measure close (interp=%d jit=%d)" t_interp t_jit)
    true
    (float_of_int delta < 0.002 *. float_of_int t_interp)

let test_break_even () =
  let e1 = Engine.create () in
  let fast = Mtj_pintool.Rate_sampler.attach ~window:10 e1 in
  let e2 = Engine.create () in
  let slow = Mtj_pintool.Rate_sampler.attach ~window:10 e2 in
  (* fast starts slower (warmup) then races ahead *)
  for i = 1 to 100 do
    Engine.emit e1 (Cost.make ~alu:(if i < 20 then 20 else 2) ());
    Engine.annot e1 Annot.Dispatch_tick
  done;
  for _ = 1 to 100 do
    Engine.emit e2 (Cost.make ~alu:5 ());
    Engine.annot e2 Annot.Dispatch_tick
  done;
  Mtj_pintool.Rate_sampler.finalize fast;
  Mtj_pintool.Rate_sampler.finalize slow;
  match Mtj_pintool.Rate_sampler.break_even fast ~against:slow with
  | Some x -> Alcotest.(check bool) "break even later than start" true (x > 10)
  | None -> Alcotest.fail "expected a break-even point"

let test_aot_attribution_pidigits () =
  let b = Mtj_benchmarks.Registry.find_exn ~lang:Mtj_benchmarks.Registry.Py "pidigits" in
  let config = Config.with_budget 100_000_000 Config.default in
  let vm = Mtj_pylite.Vm.create ~config () in
  let e = Mtj_pylite.Vm.engine vm in
  let at = Mtj_pintool.Aot_attrib.attach e in
  ignore (Mtj_pylite.Vm.run_source vm b.Mtj_benchmarks.Registry.source);
  let top = Mtj_pintool.Aot_attrib.top at ~n:5 in
  let names =
    List.filter_map
      (fun (id, _) -> Option.map Mtj_rt.Aot.name (Mtj_rt.Aot.find id))
      top
  in
  Alcotest.(check bool)
    (Printf.sprintf "bigint functions dominate (%s)" (String.concat "," names))
    true
    (List.exists (fun n -> n = "rbigint.mul" || n = "rbigint.add") names)

let test_app_marker_reaches_listener () =
  let config = Config.with_budget 1_000_000 Config.no_jit in
  let vm = Mtj_pylite.Vm.create ~config () in
  let seen = ref [] in
  Engine.add_listener (Mtj_pylite.Vm.engine vm) (fun ~insns:_ a ->
      match a with Annot.App_marker n -> seen := n :: !seen | _ -> ());
  ignore (Mtj_pylite.Vm.run_source vm "annotate(7)\nannotate(13)\n");
  Alcotest.(check (list int)) "markers" [ 13; 7 ] !seen

let suite =
  [
    Alcotest.test_case "tracker matches counters (synthetic)" `Quick
      test_phase_tracker_matches_counters;
    Alcotest.test_case "tracker matches counters (real run)" `Quick
      test_phase_tracker_on_benchmark;
    Alcotest.test_case "timeline shows warmup" `Quick test_timeline_shows_warmup;
    Alcotest.test_case "rate sampler counts ticks" `Quick
      test_rate_sampler_counts_ticks;
    Alcotest.test_case "work measure is VM-independent" `Quick
      test_rate_sampler_work_invariant;
    Alcotest.test_case "break-even detection" `Quick test_break_even;
    Alcotest.test_case "aot attribution on pidigits" `Quick
      test_aot_attribution_pidigits;
    Alcotest.test_case "app-level markers" `Quick test_app_marker_reaches_listener;
  ]
