(** White-box tests of the JIT machinery: trace compilation, bridges,
    aborts, blacklisting, and the measurable effect of each optimizer
    pass on the compiled IR. *)

module V = Mtj_pylite.Vm
module C = Mtj_core.Config
module Ir = Mtj_rjit.Ir
module Jitlog = Mtj_rjit.Jitlog

let eager ?(tweak = fun c -> c) () =
  tweak
    {
      C.default with
      C.jit_threshold = 7;
      bridge_threshold = 4;
      insn_budget = 50_000_000;
    }

let run ?tweak src =
  let config = eager ?tweak () in
  let vm = V.create ~config () in
  (match V.run_source vm src with
  | Mtj_rjit.Driver.Completed _ -> ()
  | Mtj_rjit.Driver.Budget_exceeded -> Alcotest.fail "budget"
  | Mtj_rjit.Driver.Runtime_error e -> Alcotest.failf "error %s" e);
  V.jitlog vm

let count_ops pred jl =
  List.fold_left
    (fun acc (tr : Ir.trace) ->
      Array.fold_left
        (fun acc (op : Ir.op) -> if pred op then acc + 1 else acc)
        acc tr.Ir.ops)
    0 (Jitlog.traces jl)

let is_new (op : Ir.op) =
  match op.Ir.opcode with
  | Ir.New_with_vtable _ | Ir.New_array _ | Ir.New_list _ | Ir.New_cell -> true
  | _ -> false

let is_guard (op : Ir.op) =
  match op.Ir.opcode with Ir.Guard _ -> true | _ -> false

let hot_loop_src =
  "def f(n):\n    s = 0\n    for i in range(n):\n        s = s + i\n    return s\nprint(f(500))\n"

let test_loop_compiles () =
  let jl = run hot_loop_src in
  Alcotest.(check bool) "compiled" true (Jitlog.num_traces jl >= 1);
  let loop_traces =
    List.filter
      (fun (tr : Ir.trace) ->
        match tr.Ir.kind with Ir.Loop _ -> true | Ir.Bridge _ -> false)
      (Jitlog.traces jl)
  in
  Alcotest.(check bool) "has loop" true (List.length loop_traces >= 1);
  (* the loop executed many times *)
  Alcotest.(check bool) "hot" true
    (List.exists (fun (tr : Ir.trace) -> tr.Ir.exec_count > 200) loop_traces)

let test_trace_ends_with_jump () =
  let jl = run hot_loop_src in
  List.iter
    (fun (tr : Ir.trace) ->
      match tr.Ir.kind with
      | Ir.Loop _ ->
          let last = tr.Ir.ops.(Array.length tr.Ir.ops - 1) in
          Alcotest.(check bool) "ends with jump" true
            (match last.Ir.opcode with Ir.Jump -> true | _ -> false)
      | Ir.Bridge _ -> ())
    (Jitlog.traces jl)

let test_bridge_created_for_biased_branch () =
  (* a branch taken ~50/50 causes frequent guard failures -> a bridge *)
  let src =
    "def f(n):\n    s = 0\n    for i in range(n):\n        if i % 2 == 0:\n            s = s + 1\n        else:\n            s = s + 2\n    return s\nprint(f(800))\n"
  in
  let jl = run src in
  Alcotest.(check bool) "bridges attached" true (jl.Jitlog.bridges_attached >= 1);
  (* with the bridge installed, deopts stop growing: far fewer deopts
     than iterations *)
  Alcotest.(check bool) "deopts bounded" true (jl.Jitlog.deopts < 400)

let test_abort_and_blacklist_deep_recursion () =
  let src =
    "def fib(n):\n    if n < 2:\n        return n\n    return fib(n - 1) + fib(n - 2)\ndef main():\n    s = 0\n    for i in range(45):\n        s = s + fib(11)\n    return s\nprint(main())\n"
  in
  let jl = run src in
  Alcotest.(check bool) "aborted" true (jl.Jitlog.aborts >= 1);
  Alcotest.(check bool) "blacklisted" true (jl.Jitlog.blacklisted >= 1)

let test_virtuals_remove_allocations () =
  let src =
    "def f(n):\n    s = 0\n    for i in range(n):\n        s = s + (i, i + 1)[0] + (i, i + 1)[1]\n    return s\nprint(f(400))\n"
  in
  let with_v = run src in
  let without_v = run ~tweak:(fun c -> { c with C.opt_virtuals = false }) src in
  let news_with = count_ops is_new with_v in
  let news_without = count_ops is_new without_v in
  Alcotest.(check bool)
    (Printf.sprintf "fewer news (%d vs %d)" news_with news_without)
    true (news_with < news_without)

let test_guard_elim_reduces_guards () =
  (* two identical guarded list reads in one iteration: the second bound
     check is implied by the first; peeling off on both sides so the
     static trace sizes are comparable *)
  let src =
    "def f(n):\n    l = [1, 2, 3, 4]\n    s = 0\n    for i in range(n):\n        k = i % 4\n        s = s + l[k] + l[k]\n    return s\nprint(f(400))\n"
  in
  let with_opt =
    run ~tweak:(fun c -> { c with C.opt_peel = false }) src
  in
  let without_opt =
    run ~tweak:(fun c -> { c with C.opt_guard_elim = false; opt_peel = false }) src
  in
  let g_with = count_ops is_guard with_opt in
  let g_without = count_ops is_guard without_opt in
  Alcotest.(check bool)
    (Printf.sprintf "fewer guards (%d vs %d)" g_with g_without)
    true (g_with < g_without)

let test_peeling_structure () =
  let jl = run hot_loop_src in
  let tr =
    List.find
      (fun (tr : Ir.trace) ->
        match tr.Ir.kind with Ir.Loop _ -> true | _ -> false)
      (Jitlog.traces jl)
  in
  (* peeled: the back-edge targets the loop part, not op 0 *)
  Alcotest.(check bool) "loop_start past preamble" true (tr.Ir.loop_start > 0);
  Alcotest.(check bool) "loop_base shifted" true (tr.Ir.loop_base > 0);
  (* the loop part runs more often than the preamble part *)
  Alcotest.(check bool) "loop part hotter" true
    (tr.Ir.op_exec.(tr.Ir.loop_start) > tr.Ir.op_exec.(0))

let test_peeling_hoists_guards () =
  let peeled = run hot_loop_src in
  let unpeeled = run ~tweak:(fun c -> { c with C.opt_peel = false }) hot_loop_src in
  (* dynamic guard executions are lower with peeling, because the loop
     part re-checks less *)
  let dyn_guards jl =
    List.fold_left
      (fun acc (tr : Ir.trace) ->
        let s = ref acc in
        Array.iteri
          (fun i (op : Ir.op) ->
            if is_guard op then s := !s + tr.Ir.op_exec.(i))
          tr.Ir.ops;
        !s)
      0 (Jitlog.traces jl)
  in
  Alcotest.(check bool)
    (Printf.sprintf "fewer dynamic guards (%d vs %d)" (dyn_guards peeled)
       (dyn_guards unpeeled))
    true
    (dyn_guards peeled < dyn_guards unpeeled)

let test_jitlog_stats_consistency () =
  let jl = run hot_loop_src in
  let compiled = Jitlog.total_ir_compiled jl in
  let dynamic = Jitlog.total_dynamic_ir jl in
  Alcotest.(check bool) "compiled > 0" true (compiled > 0);
  Alcotest.(check bool) "dynamic >= compiled" true (dynamic >= compiled);
  let hot = Jitlog.hot_ir_fraction jl ~coverage:0.95 in
  Alcotest.(check bool) "hot fraction in (0,100]" true (hot > 0.0 && hot <= 100.0);
  let cats = Jitlog.dynamic_by_category jl in
  let total_cat = List.fold_left (fun a (_, n) -> a + n) 0 cats in
  Alcotest.(check int) "categories partition dynamic count" dynamic total_cat

let test_x86_per_type_positive () =
  let jl = run hot_loop_src in
  List.iter
    (fun (ty, mean) ->
      if mean <= 0.0 then Alcotest.failf "non-positive x86 mean for %s" ty)
    (Jitlog.x86_per_node_type jl)

let test_global_invalidation () =
  (* storing a global inside the loop invalidates promoted loads but must
     stay correct *)
  let src =
    "g = 0\ndef f(n):\n    global g\n    s = 0\n    for i in range(n):\n        g = g + 1\n        s = s + g\n    return s\nprint(f(300))\n"
  in
  let config = eager () in
  let outcome, vm = V.run ~config src in
  (match outcome with
  | Mtj_rjit.Driver.Completed _ -> ()
  | _ -> Alcotest.fail "did not complete");
  Alcotest.(check string) "sum of 1..300" "45150\n" (V.output vm)

let test_budget_mid_jit () =
  let config = { (eager ()) with C.insn_budget = 60_000 } in
  let vm = V.create ~config () in
  match V.run_source vm "def f():\n    s = 0\n    i = 0\n    while True:\n        i = i + 1\n        s = s + i\nf()\n" with
  | Mtj_rjit.Driver.Budget_exceeded -> ()
  | _ -> Alcotest.fail "expected budget exhaustion"

(* regression for the virtual-substitution chain bug: every compiled
   trace must only reference registers that are defined (entry slots,
   loop-carried slots, or results of retained ops) *)
let check_no_dangling_regs (jl : Jitlog.t) =
  List.iter
    (fun (tr : Ir.trace) ->
      let defined = Hashtbl.create 64 in
      for i = 0 to tr.Ir.entry_slots - 1 do
        Hashtbl.replace defined i ();
        Hashtbl.replace defined (tr.Ir.loop_base + i) ()
      done;
      let check_reg what r =
        if not (Hashtbl.mem defined r) then
          Alcotest.failf "trace %d: %s references undefined r%d" tr.Ir.trace_id
            what r
      in
      let check_src = function
        | Ir.S_reg r -> check_reg "resume" r
        | Ir.S_const _ | Ir.S_virtual _ -> ()
      in
      let check_resume (r : Ir.resume) =
        List.iter
          (fun (f : Ir.frame_snap) ->
            Array.iter check_src f.Ir.snap_locals;
            Array.iter check_src f.Ir.snap_stack)
          r.Ir.frames;
        Array.iter
          (function
            | Ir.V_instance { v_fields; _ } -> Array.iter check_src v_fields
            | Ir.V_tuple a | Ir.V_list a -> Array.iter check_src a
            | Ir.V_cell sc -> check_src sc)
          r.Ir.r_virtuals
      in
      Array.iter
        (fun (op : Ir.op) ->
          Array.iter
            (function Ir.Reg r -> check_reg "op arg" r | Ir.Const _ -> ())
            op.Ir.args;
          (match op.Ir.opcode with
          | Ir.Guard g -> check_resume g.Ir.resume
          | Ir.Debug_merge_point d -> check_resume d.dmp_resume
          | _ -> ());
          if op.Ir.result >= 0 then Hashtbl.replace defined op.Ir.result ())
        tr.Ir.ops)
    (Jitlog.traces jl)

let test_traces_well_formed () =
  (* rklite binarytrees historically triggered dangling registers via
     chained virtual reads; check it and a dict/string workload *)
  let rk = Mtj_benchmarks.Registry.find_exn ~lang:Mtj_benchmarks.Registry.Rk "binarytrees" in
  let config = C.with_budget 250_000_000 C.default in
  let vm = Mtj_rklite.Kvm.create ~config () in
  (match Mtj_rklite.Kvm.run_source vm rk.Mtj_benchmarks.Registry.source with
  | Mtj_rjit.Driver.Completed _ -> ()
  | _ -> Alcotest.fail "rk binarytrees failed");
  check_no_dangling_regs (Mtj_rklite.Kvm.jitlog vm);
  let py = Mtj_benchmarks.Registry.find_exn ~lang:Mtj_benchmarks.Registry.Py "django" in
  let vm2 = V.create ~config () in
  (match V.run_source vm2 py.Mtj_benchmarks.Registry.source with
  | Mtj_rjit.Driver.Completed _ -> ()
  | _ -> Alcotest.fail "django failed");
  check_no_dangling_regs (V.jitlog vm2)

(* toplevel loops store their counters as module globals every iteration;
   PyPy's module-dict cells keep that from invalidating traces. Before
   the cell strategy this program compiled one bridge every
   bridge_threshold iterations, forever (624 traces). *)
let test_global_store_does_not_storm () =
  let config = eager () in
  let vm = V.create ~config () in
  (match V.run_source vm
    "out = []\n\
     acc = 0\n\
     for i in range(2500):\n\
    \    xs = [i, i + 1, i + 2]\n\
    \    out.append(xs)\n\
    \    acc = acc + xs[2]\n\
     print(acc)\n" with
  | Mtj_rjit.Driver.Completed _ -> ()
  | _ -> Alcotest.fail "run failed");
  Alcotest.(check string) "output" "3128750\n" (V.output vm);
  let jl = V.jitlog vm in
  Alcotest.(check bool) "no bridge storm" true (Jitlog.num_traces jl <= 4);
  Alcotest.(check bool) "few deopts" true (jl.Jitlog.deopts < 50);
  (* the loop trace took essentially every iteration *)
  Alcotest.(check bool) "loop stays compiled" true
    (List.exists (fun (tr : Ir.trace) -> tr.Ir.exec_count > 2400)
       (Jitlog.traces jl))

(* --- two-tier extension --- *)

let test_tiered_retier () =
  let config =
    {
      C.default with
      C.jit_threshold = 7;
      bridge_threshold = 4;
      insn_budget = 50_000_000;
      tier_policy = C.Adaptive;
      tier2_threshold = 10;
    }
  in
  let vm = V.create ~config () in
  (match V.run_source vm hot_loop_src with
  | Mtj_rjit.Driver.Completed _ -> ()
  | _ -> Alcotest.fail "run failed");
  Alcotest.(check string) "same output" "124750\n" (V.output vm);
  let jl = V.jitlog vm in
  Alcotest.(check bool) "a retier happened" true (jl.Jitlog.retiers >= 1);
  let loops =
    List.filter
      (fun (tr : Ir.trace) ->
        match tr.Ir.kind with Ir.Loop _ -> true | _ -> false)
      (Jitlog.traces jl)
  in
  let tier1 = List.filter (fun (tr : Ir.trace) -> tr.Ir.tier = 1) loops in
  let tier2 = List.filter (fun (tr : Ir.trace) -> tr.Ir.tier = 2) loops in
  Alcotest.(check bool) "both tiers present" true
    (tier1 <> [] && tier2 <> []);
  (* the optimized recompile's steady-state loop body must be strictly
     smaller (the peeled preamble runs once and doesn't count) *)
  let min_body trs =
    List.fold_left
      (fun acc (tr : Ir.trace) ->
        min acc (Array.length tr.Ir.ops - tr.Ir.loop_start))
      max_int trs
  in
  Alcotest.(check bool) "tier-2 loop body smaller than tier-1" true
    (min_body tier2 < min_body tier1);
  (* after the retier the tier-2 trace takes all further iterations *)
  Alcotest.(check bool) "tier-2 is the hot one" true
    (List.exists (fun (tr : Ir.trace) -> tr.Ir.exec_count > 200) tier2)

let test_tiered_matches_interp () =
  (* a branchy program with bridges + retier; outputs must match interp *)
  let src =
    "acc = 0\n\
     for i in range(400):\n\
    \    if i % 3 == 0:\n\
    \        acc = acc + i\n\
    \    else:\n\
    \        acc = acc - 1\n\
     print(acc)\n"
  in
  let out config =
    let vm = V.create ~config () in
    (match V.run_source vm src with
    | Mtj_rjit.Driver.Completed _ -> ()
    | _ -> Alcotest.fail "run failed");
    V.output vm
  in
  let interp = out { C.no_jit with C.insn_budget = 50_000_000 } in
  let tiered =
    out
      {
        C.default with
        C.jit_threshold = 7;
        bridge_threshold = 3;
        insn_budget = 50_000_000;
        tier_policy = C.Adaptive;
        tier2_threshold = 8;
      }
  in
  Alcotest.(check string) "tiered = interp" interp tiered

(* --- tier policy state machine (pure, property-tested) --- *)

module Tierpolicy = Mtj_rjit.Tierpolicy

(* random but sane tier knobs *)
let gen_tier_cfg =
  QCheck.Gen.(
    let* jit_threshold = int_range 1 200 in
    let* tier1_threshold = int_range 1 200 in
    let* tier2_threshold = int_range 1 100 in
    let* tier_stable_every = int_range 0 16 in
    let* demote_bridges = int_range 1 8 in
    let* max_demotions = int_range 0 4 in
    let* policy = oneofl C.all_tier_policies in
    return
      {
        C.default with
        C.jit_threshold;
        tier1_threshold;
        tier2_threshold;
        tier_stable_every;
        demote_bridges;
        max_demotions;
        tier_policy = policy;
      })

let arb_tier_cfg = QCheck.make gen_tier_cfg

let prop_promotion_monotone =
  QCheck.Test.make ~count:500 ~name:"tier-up promotion is monotone in hotness"
    QCheck.(
      pair arb_tier_cfg (quad small_nat small_nat small_nat small_nat))
    (fun (cfg, (execs, extra, deopts, promote_at)) ->
      match
        Tierpolicy.tier_up cfg ~tier:1 ~execs ~deopts ~promote_at
      with
      | Tierpolicy.Promote -> (
          (* same deopt profile, more executions: still Promote *)
          match
            Tierpolicy.tier_up cfg ~tier:1 ~execs:(execs + extra) ~deopts
              ~promote_at
          with
          | Tierpolicy.Promote -> true
          | _ -> false)
      | Tierpolicy.Defer p ->
          (* deferral always makes progress: the new promotion point is
             in the future, so the portal is not consulted every
             back-edge *)
          p > execs
      | Tierpolicy.Stay -> true)

let prop_tier2_never_promotes =
  QCheck.Test.make ~count:200 ~name:"tier-2 traces never tier up again"
    QCheck.(pair arb_tier_cfg (triple small_nat small_nat small_nat))
    (fun (cfg, (execs, deopts, promote_at)) ->
      Tierpolicy.tier_up cfg ~tier:2 ~execs ~deopts ~promote_at
      = Tierpolicy.Stay)

let prop_demotion_backoff =
  QCheck.Test.make ~count:200
    ~name:"re-promotion threshold doubles per demotion, then pins"
    QCheck.(pair arb_tier_cfg (int_range 1 8))
    (fun (cfg, demotions) ->
      let at = Tierpolicy.demoted_promote_at cfg ~demotions in
      if demotions > cfg.C.max_demotions then at = Tierpolicy.never
      else
        at = cfg.C.tier2_threshold * (1 lsl demotions)
        && at >= Tierpolicy.demoted_promote_at cfg ~demotions:(demotions - 1))

let prop_single_tier_policies_never_promote =
  QCheck.Test.make ~count:200
    ~name:"Optimizing/Baseline traces carry the never sentinel"
    arb_tier_cfg
    (fun cfg ->
      match cfg.C.tier_policy with
      | C.Adaptive ->
          Tierpolicy.initial_promote_at cfg = cfg.C.tier2_threshold
      | C.Optimizing | C.Baseline ->
          Tierpolicy.initial_promote_at cfg = Tierpolicy.never
          && not
               (Tierpolicy.hot
                  ~promote_at:(Tierpolicy.initial_promote_at cfg)
                  ~execs:max_int))

let prop_demote_needs_adaptive_tier2 =
  QCheck.Test.make ~count:200 ~name:"demotion needs Adaptive + tier 2 + bridges"
    QCheck.(pair arb_tier_cfg (pair (int_range 0 3) small_nat))
    (fun (cfg, (tier, bridges)) ->
      let d = Tierpolicy.should_demote cfg ~tier ~bridges in
      d
      = (cfg.C.tier_policy = C.Adaptive && tier >= 2
        && bridges >= cfg.C.demote_bridges))

(* the end-to-end lifecycle: promote, grow bridges, demote, re-promote at
   a doubled threshold, pin once max_demotions is exhausted.  The
   superseded optimized traces must have their cached threaded code
   invalidated, so any stale code_ref re-translates instead of running
   the old closure array. *)
let test_demotion_invalidates_code () =
  let config =
    {
      C.default with
      C.jit_threshold = 7;
      bridge_threshold = 30;
      insn_budget = 100_000_000;
      tier_policy = C.Adaptive;
      tier2_threshold = 8;
      tier_stable_every = 0;
      demote_bridges = 2;
      max_demotions = 2;
    }
  in
  let src =
    "a = 0\n\
     b = 0\n\
     c = 0\n\
     for i in range(3000):\n\
    \    if i % 2 == 0:\n\
    \        a = a + 1\n\
    \    else:\n\
    \        a = a + 2\n\
    \    if i % 3 == 0:\n\
    \        b = b + 1\n\
    \    else:\n\
    \        b = b + 2\n\
    \    if i % 5 == 0:\n\
    \        c = c + 1\n\
    \    else:\n\
    \        c = c + 2\n\
     print(a + b + c)\n"
  in
  let vm = V.create ~config () in
  (match V.run_source vm src with
  | Mtj_rjit.Driver.Completed _ -> ()
  | _ -> Alcotest.fail "run failed");
  Alcotest.(check string) "output" "14900\n" (V.output vm);
  let jl = V.jitlog vm in
  Alcotest.(check bool) "promoted" true (jl.Jitlog.retiers >= 1);
  Alcotest.(check bool) "demoted" true (jl.Jitlog.demotions >= 1);
  Alcotest.(check bool) "oscillation damped" true
    (jl.Jitlog.demotions <= config.C.max_demotions + 1);
  (* every demoted tier-2 loop was invalidated: its threaded code cannot
     be entered stale, the next entry re-translates *)
  let tier2_loops =
    List.filter
      (fun (tr : Ir.trace) ->
        tr.Ir.tier = 2
        && match tr.Ir.kind with Ir.Loop _ -> true | _ -> false)
      (Jitlog.traces jl)
  in
  Alcotest.(check int)
    "one optimized loop compile per promotion" jl.Jitlog.retiers
    (List.length tier2_loops);
  List.iter
    (fun (tr : Ir.trace) ->
      Alcotest.(check bool)
        (Printf.sprintf "tier-2 loop %d invalidated after demotion"
           tr.Ir.trace_id)
        true
        (tr.Ir.code_version >= 1))
    tier2_loops;
  (* exponential backoff is visible in the run: each demoted replacement
     waits twice as long before re-promoting, so the tier-1 loop
     compiles' exec counts double until the site pins at tier 1 *)
  let tier1_loop_execs =
    List.filter_map
      (fun (tr : Ir.trace) ->
        match tr.Ir.kind with
        | Ir.Loop _ when tr.Ir.tier = 1 -> Some tr.Ir.exec_count
        | _ -> None)
      (Jitlog.traces jl)
  in
  match tier1_loop_execs with
  | first :: (_ :: _ as rest) ->
      let promoted, pinned =
        List.filteri (fun i _ -> i < List.length rest - 1) rest,
        List.nth rest (List.length rest - 1)
      in
      ignore first;
      List.iteri
        (fun i execs ->
          Alcotest.(check int)
            (Printf.sprintf "re-promotion %d waited 2^%d longer" (i + 1)
               (i + 1))
            (config.C.tier2_threshold * (1 lsl (i + 1)))
            execs)
        promoted;
      Alcotest.(check bool) "the pinned tier-1 loop takes the tail" true
        (pinned > 1000)
  | _ -> Alcotest.fail "expected several tier-1 loop compiles"

let suite =
  [
    Alcotest.test_case "hot loop compiles" `Quick test_loop_compiles;
    Alcotest.test_case "loop trace ends with jump" `Quick test_trace_ends_with_jump;
    Alcotest.test_case "bridge for biased branch" `Quick
      test_bridge_created_for_biased_branch;
    Alcotest.test_case "abort + blacklist on deep recursion" `Quick
      test_abort_and_blacklist_deep_recursion;
    Alcotest.test_case "escape analysis removes news" `Quick
      test_virtuals_remove_allocations;
    Alcotest.test_case "guard elimination reduces guards" `Quick
      test_guard_elim_reduces_guards;
    Alcotest.test_case "peeling structure" `Quick test_peeling_structure;
    Alcotest.test_case "peeling hoists guards" `Quick test_peeling_hoists_guards;
    Alcotest.test_case "jitlog stats consistent" `Quick
      test_jitlog_stats_consistency;
    Alcotest.test_case "x86 per type positive" `Quick test_x86_per_type_positive;
    Alcotest.test_case "global store invalidation" `Quick test_global_invalidation;
    Alcotest.test_case "budget exhaustion mid-JIT" `Quick test_budget_mid_jit;
    Alcotest.test_case "compiled traces are well-formed" `Slow
      test_traces_well_formed;
    Alcotest.test_case "global stores don't storm bridges" `Quick
      test_global_store_does_not_storm;
    Alcotest.test_case "two-tier: retier fires and shrinks" `Quick
      test_tiered_retier;
    Alcotest.test_case "two-tier: bridgy program matches interp" `Quick
      test_tiered_matches_interp;
    Alcotest.test_case "adaptive: demotion invalidates optimized code" `Quick
      test_demotion_invalidates_code;
    QCheck_alcotest.to_alcotest prop_promotion_monotone;
    QCheck_alcotest.to_alcotest prop_tier2_never_promotes;
    QCheck_alcotest.to_alcotest prop_demotion_backoff;
    QCheck_alcotest.to_alcotest prop_single_tier_policies_never_promote;
    QCheck_alcotest.to_alcotest prop_demote_needs_adaptive_tier2;
  ]
