(** Integration tests: every registered benchmark runs to completion and
    prints identical output under the interpreter and the JIT (both
    languages); native kernels agree with the hosted programs; the
    experiment runner produces sane results. *)

module B = Mtj_benchmarks.Registry
module C = Mtj_core.Config
module R = Mtj_harness.Runner

let budget = 250_000_000

let run_py config src =
  let outcome, vm = Mtj_pylite.Vm.run ~config src in
  (outcome, Mtj_pylite.Vm.output vm)

let run_rk config src =
  let outcome, vm = Mtj_rklite.Kvm.run ~config src in
  (outcome, Mtj_rklite.Kvm.output vm)

let completed = function
  | Mtj_rjit.Driver.Completed _ -> true
  | _ -> false

let bench_case (b : B.bench) =
  let name =
    Printf.sprintf "%s (%s)" b.B.name
    (match b.B.lang with B.Py -> "py" | B.Rk -> "rk")
  in
  Alcotest.test_case name `Slow (fun () ->
      let runner = match b.B.lang with B.Py -> run_py | B.Rk -> run_rk in
      let o1, out1 = runner (C.with_budget budget C.no_jit) b.B.source in
      let o2, out2 = runner (C.with_budget budget C.default) b.B.source in
      Alcotest.(check bool) (name ^ " interp completes") true (completed o1);
      Alcotest.(check bool) (name ^ " jit completes") true (completed o2);
      Alcotest.(check string) (name ^ " outputs agree") out1 out2;
      Alcotest.(check bool) (name ^ " output nonempty") true
        (String.length out1 > 0))

(* native kernels must print what the hosted versions print *)
let native_agreement (kname : string) =
  Alcotest.test_case ("native " ^ kname) `Slow (fun () ->
      let kernel = Option.get (Mtj_baselines.Native.find kname) in
      let rtc = Mtj_rt.Ctx.create ~config:(C.with_budget budget C.no_jit) () in
      let native_out = Mtj_baselines.Native.run rtc kernel in
      let b = B.find_exn ~lang:B.Py kname in
      let _, hosted = run_py (C.with_budget budget C.default) b.B.source in
      Alcotest.(check string) (kname ^ ": native = hosted") hosted native_out)

let native_kernels_to_check =
  (* kernels whose float evaluation order matches the hosted source
     exactly; nbody is checked for shape instead *)
  [ "binarytrees"; "fasta"; "mandelbrot"; "fannkuchredux"; "pidigits";
    "revcomp"; "knucleotide"; "chameneosredux"; "spectralnorm" ]

let test_runner_speedup_ordering () =
  (* the runner's three Python configurations must order as the paper's:
     nojit slowest, cpython middle, jit fastest (on a JIT-friendly
     benchmark) *)
  let c = R.run "crypto_pyaes" R.Cpython in
  let nj = R.run "crypto_pyaes" R.Pypy_nojit in
  let j = R.run "crypto_pyaes" R.Pypy_jit in
  Alcotest.(check bool) "nojit slower than cpython" true
    (nj.R.cycles > c.R.cycles);
  Alcotest.(check bool) "jit faster than cpython" true (j.R.cycles < c.R.cycles);
  Alcotest.(check string) "outputs equal" c.R.output j.R.output;
  Alcotest.(check string) "outputs equal 2" c.R.output nj.R.output

let test_runner_phase_fractions_sum () =
  let r = R.run "django" R.Pypy_jit in
  let total =
    List.fold_left
      (fun acc p -> acc +. R.phase_fraction r p)
      0.0 Mtj_core.Phase.all
  in
  Alcotest.(check bool) "fractions sum to 1" true (Float.abs (total -. 1.0) < 1e-6)

let test_runner_native () =
  let r = R.run "mandelbrot" R.Native_c in
  Alcotest.(check bool) "completed" true (r.R.status = R.Ok_run);
  Alcotest.(check bool) "cheap" true (r.R.insns < 10_000_000)

let test_pidigits_is_jit_call_bound () =
  (* the paper's flagship AOT-call benchmark: under the JIT, most time is
     in the Jit_call phase *)
  let r = R.run "pidigits" R.Pypy_jit in
  Alcotest.(check bool) "jit_call dominates" true
    (R.phase_fraction r Mtj_core.Phase.Jit_call > 0.4)

let test_sympy_str_stays_interpreted () =
  let r = R.run "sympy_str" R.Pypy_jit in
  Alcotest.(check bool) "interpreter dominates" true
    (R.phase_fraction r Mtj_core.Phase.Interpreter > 0.8)

let test_binarytrees_gc_pressure () =
  let r = R.run "binarytrees" R.Pypy_jit in
  Alcotest.(check bool) "allocates a lot" true
    (r.R.gc.Mtj_rt.Gc_sim.allocated_objects > 5_000);
  Alcotest.(check bool) "minor collections happened" true
    (r.R.gc.Mtj_rt.Gc_sim.minor_collections > 0)

(* the whole stack is a deterministic simulation: two identical runs must
   agree to the cycle, not just on output *)
let test_deterministic_simulation () =
  let once () =
    let config = C.with_budget 50_000_000 C.default in
    let b = B.find_exn ~lang:B.Py "richards" in
    let vm = Mtj_pylite.Vm.create ~config () in
    (match Mtj_pylite.Vm.run_source vm b.B.source with
    | Mtj_rjit.Driver.Completed _ -> ()
    | _ -> Alcotest.fail "run failed");
    let eng = Mtj_pylite.Vm.engine vm in
    ( Mtj_pylite.Vm.output vm,
      Mtj_machine.Engine.total_insns eng,
      Mtj_machine.Engine.total_cycles eng,
      Mtj_rjit.Jitlog.num_traces (Mtj_pylite.Vm.jitlog vm) )
  in
  let o1, i1, c1, t1 = once () in
  let o2, i2, c2, t2 = once () in
  Alcotest.(check string) "same output" o1 o2;
  Alcotest.(check int) "same instruction count" i1 i2;
  Alcotest.(check int) "same trace count" t1 t2;
  (* cycles are layout-sensitive: the second VM's code objects get
     different global code ids, which index the predictor/BTB/cache
     differently — exactly like re-running a real binary at a different
     load address. Counts above are exact; timing agrees to ~1%. *)
  Alcotest.(check bool) "cycle counts within 1%" true
    (Float.abs (c1 -. c2) /. c1 < 0.01)

let suite =
  List.map bench_case B.all
  @ List.map native_agreement native_kernels_to_check
  @ [
      Alcotest.test_case "runner speedup ordering" `Slow
        test_runner_speedup_ordering;
      Alcotest.test_case "phase fractions sum to 1" `Slow
        test_runner_phase_fractions_sum;
      Alcotest.test_case "native kernel runs" `Quick test_runner_native;
      Alcotest.test_case "pidigits is jit_call bound" `Slow
        test_pidigits_is_jit_call_bound;
      Alcotest.test_case "sympy_str stays interpreted" `Slow
        test_sympy_str_stays_interpreted;
      Alcotest.test_case "binarytrees GC pressure" `Slow
        test_binarytrees_gc_pressure;
      Alcotest.test_case "simulation is deterministic" `Quick
        test_deterministic_simulation;
    ]
