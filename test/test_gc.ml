(** Tests for the generational GC: reachability, promotion, remembered
    sets, write barriers, and phase accounting. *)

open Mtj_rt
module V = Value
module Engine = Mtj_machine.Engine

let small_nursery = { Mtj_core.Config.no_jit with Mtj_core.Config.nursery_words = 256 }

let ctx () = Ctx.create ~config:small_nursery ()

let alloc_pair gc a b =
  Gc_sim.alloc gc (V.Tuple [| a; b |])

let test_alloc_counts () =
  let c = ctx () in
  let gc = Ctx.gc c in
  for _ = 1 to 10 do
    ignore (alloc_pair gc V.nil V.nil)
  done;
  let s = Gc_sim.stats gc in
  Alcotest.(check int) "allocated" 10 s.Gc_sim.allocated_objects

let test_minor_frees_garbage () =
  let c = ctx () in
  let gc = Ctx.gc c in
  (* no roots registered: everything in the nursery is garbage *)
  for _ = 1 to 100 do
    ignore (alloc_pair gc V.nil V.nil)
  done;
  Gc_sim.collect_minor gc;
  let s = Gc_sim.stats gc in
  Alcotest.(check int) "all freed" 100 s.Gc_sim.freed_objects;
  Alcotest.(check int) "nursery empty" 0 (Gc_sim.nursery_used gc)

let test_roots_survive () =
  let c = ctx () in
  let gc = Ctx.gc c in
  let keep = alloc_pair gc (V.of_int 1) (V.of_int 2) in
  let _garbage = alloc_pair gc V.nil V.nil in
  ignore (Gc_sim.add_root_scanner gc (fun visit -> visit (V.of_obj keep)));
  Gc_sim.collect_minor gc;
  let s = Gc_sim.stats gc in
  Alcotest.(check int) "one freed" 1 s.Gc_sim.freed_objects;
  Alcotest.(check bool) "survivor still in nursery accounting" true
    (Gc_sim.nursery_used gc > 0)

let test_transitive_reachability () =
  let c = ctx () in
  let gc = Ctx.gc c in
  (* a chain root -> a -> b -> c; only the root is scanned *)
  let cobj = alloc_pair gc (V.of_int 3) V.nil in
  let bobj = alloc_pair gc (V.of_obj cobj) V.nil in
  let aobj = alloc_pair gc (V.of_obj bobj) V.nil in
  ignore (Gc_sim.add_root_scanner gc (fun visit -> visit (V.of_obj aobj)));
  for _ = 1 to 50 do
    ignore (alloc_pair gc V.nil V.nil)
  done;
  Gc_sim.collect_minor gc;
  let s = Gc_sim.stats gc in
  Alcotest.(check int) "garbage freed, chain kept" 50 s.Gc_sim.freed_objects

let test_promotion_after_two_minors () =
  let c = ctx () in
  let gc = Ctx.gc c in
  let keep = alloc_pair gc (V.of_int 1) V.nil in
  ignore (Gc_sim.add_root_scanner gc (fun visit -> visit (V.of_obj keep)));
  Gc_sim.collect_minor gc;
  Alcotest.(check int) "still young" 0 keep.V.gc_gen;
  Gc_sim.collect_minor gc;
  Alcotest.(check int) "promoted" 1 keep.V.gc_gen;
  Alcotest.(check bool) "old words grew" true (Gc_sim.old_words gc > 0);
  let s = Gc_sim.stats gc in
  Alcotest.(check int) "promotion count" 1 s.Gc_sim.promoted_objects

let test_remembered_set_keeps_young () =
  let c = ctx () in
  let gc = Ctx.gc c in
  (* promote a parent object to the old generation *)
  let parent =
    Gc_sim.alloc gc
      (V.Instance
         {
           V.cls =
             Gc_sim.alloc gc
               (V.Class
                  { V.cls_id = 0; cls_name = "t"; layout = [| "f" |];
                    attrs = []; parent = None });
           fields = [| V.nil |];
         })
  in
  let keep_parent =
    Gc_sim.add_root_scanner gc (fun visit -> visit (V.of_obj parent))
  in
  Gc_sim.collect_minor gc;
  Gc_sim.collect_minor gc;
  Alcotest.(check int) "parent old" 1 parent.V.gc_gen;
  (* now store a fresh young object into the old parent, with the
     barrier; drop the direct root so only the remembered set keeps it *)
  let child = alloc_pair gc (V.of_int 9) V.nil in
  (match parent.V.payload with
  | V.Instance i -> i.V.fields.(0) <- V.of_obj child
  | _ -> assert false);
  Gc_sim.write_barrier gc ~parent ~child:(V.of_obj child);
  Gc_sim.remove_root_scanner gc keep_parent;
  ignore
    (Gc_sim.add_root_scanner gc (fun visit -> visit (V.of_obj parent)));
  let freed_before = (Gc_sim.stats gc).Gc_sim.freed_objects in
  Gc_sim.collect_minor gc;
  let freed_after = (Gc_sim.stats gc).Gc_sim.freed_objects in
  (* the child must have been counted live (not freed) *)
  Alcotest.(check int) "child survives via remembered set" freed_before
    freed_after

let test_major_collects_old_garbage () =
  let c = ctx () in
  let gc = Ctx.gc c in
  let root_cell = ref [] in
  ignore
    (Gc_sim.add_root_scanner gc (fun visit ->
         List.iter (fun o -> visit (V.of_obj o)) !root_cell));
  (* promote 20 objects *)
  let objs = List.init 20 (fun i -> alloc_pair gc (V.of_int i) V.nil) in
  root_cell := objs;
  Gc_sim.collect_minor gc;
  Gc_sim.collect_minor gc;
  Alcotest.(check bool) "promoted" true (Gc_sim.old_words gc > 0);
  (* drop half and run a major collection *)
  root_cell := List.filteri (fun i _ -> i < 10) objs;
  let before = Gc_sim.old_words gc in
  Gc_sim.collect_major gc;
  let after = Gc_sim.old_words gc in
  Alcotest.(check bool) "old shrank" true (after < before);
  Alcotest.(check int) "major ran" 1 (Gc_sim.stats gc).Gc_sim.major_collections

let test_gc_charges_gc_phase () =
  let c = ctx () in
  let gc = Ctx.gc c in
  for _ = 1 to 50 do
    ignore (alloc_pair gc V.nil V.nil)
  done;
  Gc_sim.collect_minor gc;
  let counters = Engine.counters (Ctx.engine c) in
  let s = Mtj_machine.Counters.phase counters Mtj_core.Phase.Gc_minor in
  Alcotest.(check bool) "gc insns charged" true
    (s.Mtj_machine.Counters.insns > 0)

let test_alloc_triggers_collection () =
  let c = ctx () in
  let gc = Ctx.gc c in
  (* nursery is 256 words; tuples are ~5 words: ~60 allocations overflow *)
  for _ = 1 to 200 do
    ignore (alloc_pair gc V.nil V.nil)
  done;
  Alcotest.(check bool) "minor happened" true
    ((Gc_sim.stats gc).Gc_sim.minor_collections > 0)

let test_grow_accounts_words () =
  let c = ctx () in
  let gc = Ctx.gc c in
  let l = Rlist.create c [] in
  let before = Gc_sim.nursery_used gc in
  for i = 1 to 100 do
    Rlist.append c l (V.of_int i)
  done;
  Alcotest.(check bool) "growth accounted" true
    (Gc_sim.nursery_used gc > before)

let suite =
  [
    Alcotest.test_case "alloc counts" `Quick test_alloc_counts;
    Alcotest.test_case "minor frees garbage" `Quick test_minor_frees_garbage;
    Alcotest.test_case "roots survive" `Quick test_roots_survive;
    Alcotest.test_case "transitive reachability" `Quick test_transitive_reachability;
    Alcotest.test_case "promotion after two minors" `Quick test_promotion_after_two_minors;
    Alcotest.test_case "remembered set keeps young" `Quick test_remembered_set_keeps_young;
    Alcotest.test_case "major collects old garbage" `Quick test_major_collects_old_garbage;
    Alcotest.test_case "gc phase charged" `Quick test_gc_charges_gc_phase;
    Alcotest.test_case "alloc triggers collection" `Quick test_alloc_triggers_collection;
    Alcotest.test_case "grow accounts words" `Quick test_grow_accounts_words;
  ]
