(** Tier-differential test layer for the multi-tier JIT
    ([Config.tier_policy]: Optimizing / Baseline / Adaptive).

    The multi-tier machinery is held correct by running whole programs
    through real VMs and comparing everything observable:

    - {b per policy}, the threaded-dispatch interpreter and the
      reference decode-and-match loop must be BYTE-IDENTICAL — program
      output, outcome status (budget-exhaustion points landed mid-run
      included), per-phase counters (float cycles via [%.17g]), the
      sink's event stream and samples, and the jitlog's tier accounting
      (tier compiles, promotions, demotions, per-tier residency,
      first-entry warmup point);
    - {b across policies}, program output and completion status must
      agree — the tier policy moves compile costs and trace tiers, never
      semantics;
    - {b within every run}, the tier accounting must reconcile: each
      compile is exactly one tier-1 or tier-2 compile, promotions are
      bounded by tier-1 compiles, demotions by tier-2 compiles, per-tier
      entry/dynamic-IR residency equals the per-trace sums, and the
      single-tier policies never touch the other tier.

    Programs come from a deterministic pool tuned to exercise
    promotion, bridge growth and demotion, plus a QCheck generator of
    random terminating programs swept across policies and budgets. *)

module Engine = Mtj_machine.Engine
module Counters = Mtj_machine.Counters
module Sink = Mtj_obs.Sink
module Phase = Mtj_core.Phase
module Config = Mtj_core.Config
module Jitlog = Mtj_rjit.Jitlog
module Ir = Mtj_rjit.Ir
module Driver = Mtj_rjit.Driver

type lang = Py | Rk

(* ---------- digesting a run ---------- *)

let snap_str (s : Counters.snapshot) =
  Printf.sprintf "i=%d c=%.17g b=%d bm=%d l=%d s=%d cm=%d" s.Counters.insns
    s.Counters.cycles s.Counters.branches s.Counters.branch_misses
    s.Counters.loads s.Counters.stores s.Counters.cache_misses

let counters_digest eng =
  let c = Engine.counters eng in
  String.concat "\n"
    (List.map
       (fun p -> Phase.name p ^ ": " ^ snap_str (Counters.phase c p))
       Phase.all
    @ [
        "total " ^ snap_str (Counters.total c);
        Printf.sprintf "eng i=%d cy=%.17g" (Engine.total_insns eng)
          (Engine.total_cycles eng);
      ])

let events_digest sink =
  let buf = Buffer.create 1024 in
  Sink.iter_events sink (fun e ->
      let name =
        match e.Sink.kind with
        | Sink.Phase_begin p -> "push:" ^ Phase.name p
        | Sink.Phase_end p -> "pop:" ^ Phase.name p
        | Sink.Trace_enter id -> Printf.sprintf "trace_enter:%d" id
        | Sink.Trace_exit id -> Printf.sprintf "trace_exit:%d" id
        | Sink.Guard_fail id -> Printf.sprintf "guard_fail:%d" id
        | Sink.Trace_compile id -> Printf.sprintf "trace_compile:%d" id
        | Sink.Trace_abort cr -> Printf.sprintf "trace_abort:%d" cr
        | Sink.Marker n -> Printf.sprintf "marker:%d" n
      in
      Buffer.add_string buf
        (Printf.sprintf "%s@%d cy=%.17g\n" name e.Sink.at_insns e.Sink.at_cycles));
  Buffer.contents buf

(* tier accounting that must agree between dispatch modes: compiles per
   tier, promotions, demotions, the warmup latch, and per-tier
   residency (the threaded tier's own cache counters are excluded, as
   in the dispatch-differential suite) *)
let jitlog_digest (jl : Jitlog.t) =
  let t1e, t2e, t1d, t2d = Jitlog.tier_residency jl in
  Printf.sprintf
    "traces=%d aborts=%d deopts=%d bridges=%d blacklisted=%d retiers=%d \
     translations=%d cache_hits=%d ir=%d dyn_ir=%d t1c=%d t2c=%d dem=%d \
     first=%d res=%d,%d,%d,%d"
    (Jitlog.num_traces jl) jl.Jitlog.aborts jl.Jitlog.deopts
    jl.Jitlog.bridges_attached jl.Jitlog.blacklisted jl.Jitlog.retiers
    jl.Jitlog.translations jl.Jitlog.code_cache_hits
    (Jitlog.total_ir_compiled jl)
    (Jitlog.total_dynamic_ir jl)
    jl.Jitlog.tier1_compiles jl.Jitlog.tier2_compiles jl.Jitlog.demotions
    jl.Jitlog.first_entry_insns t1e t2e t1d t2d

let outcome_str = function
  | Driver.Completed _ -> "ok"
  | Driver.Budget_exceeded -> "budget"
  | Driver.Runtime_error e -> "error: " ^ e

type run = {
  digest : string;
  output : string;
  outcome : string;
  insns : int;
  jitlog : Jitlog.t;
}

let observe ~lang ~config src : run =
  let finish ~outcome ~output ~eng ~sink ~jitlog =
    Sink.finalize sink;
    {
      digest =
        String.concat "\n---\n"
          [
            outcome_str outcome;
            output;
            counters_digest eng;
            events_digest sink;
            jitlog_digest jitlog;
          ];
      output;
      outcome = outcome_str outcome;
      insns = Engine.total_insns eng;
      jitlog;
    }
  in
  match lang with
  | Py ->
      let vm = Mtj_pylite.Vm.create ~config () in
      let eng = Mtj_pylite.Vm.engine vm in
      let sink = Sink.attach ~capacity:(1 lsl 16) ~counter_window:256 eng in
      let outcome = Mtj_pylite.Vm.run_source vm src in
      finish ~outcome ~output:(Mtj_pylite.Vm.output vm) ~eng ~sink
        ~jitlog:(Mtj_pylite.Vm.jitlog vm)
  | Rk ->
      let vm = Mtj_rklite.Kvm.create ~config () in
      let eng = Mtj_rklite.Kvm.engine vm in
      let sink = Sink.attach ~capacity:(1 lsl 16) ~counter_window:256 eng in
      let outcome = Mtj_rklite.Kvm.run_source vm src in
      finish ~outcome ~output:(Mtj_rklite.Kvm.output vm) ~eng ~sink
        ~jitlog:(Mtj_rklite.Kvm.jitlog vm)

(* ---------- tier accounting invariants ---------- *)

let check_accounting name policy (r : run) =
  let jl = r.jitlog in
  let t1c = jl.Jitlog.tier1_compiles and t2c = jl.Jitlog.tier2_compiles in
  Alcotest.(check int)
    (name ^ ": tier compiles partition the traces")
    (Jitlog.num_traces jl) (t1c + t2c);
  Alcotest.(check bool)
    (name ^ ": promotions bounded by tier-1 compiles")
    true
    (jl.Jitlog.retiers <= t1c);
  Alcotest.(check bool)
    (name ^ ": demotions bounded by tier-2 compiles")
    true
    (jl.Jitlog.demotions <= t2c);
  Alcotest.(check bool)
    (name ^ ": first_entry_insns within the run")
    true
    (jl.Jitlog.first_entry_insns >= -1 && jl.Jitlog.first_entry_insns <= r.insns);
  (* the warmup latch fired iff some trace actually ran *)
  let entered =
    List.exists (fun (tr : Ir.trace) -> tr.Ir.exec_count > 0) (Jitlog.traces jl)
  in
  Alcotest.(check bool)
    (name ^ ": first-entry latch agrees with trace entries")
    entered
    (jl.Jitlog.first_entry_insns >= 0);
  (* per-tier residency reconciles exactly with the per-trace rows *)
  let t1e, t2e, t1d, t2d = Jitlog.tier_residency jl in
  let s1e = ref 0 and s2e = ref 0 and s1d = ref 0 and s2d = ref 0 in
  List.iter
    (fun (tr : Ir.trace) ->
      let dyn = Array.fold_left ( + ) 0 tr.Ir.op_exec in
      if tr.Ir.tier <= 1 then begin
        s1e := !s1e + tr.Ir.exec_count;
        s1d := !s1d + dyn
      end
      else begin
        s2e := !s2e + tr.Ir.exec_count;
        s2d := !s2d + dyn
      end)
    (Jitlog.traces jl);
  Alcotest.(check (list int))
    (name ^ ": tier residency = trace-row sums")
    [ !s1e; !s2e; !s1d; !s2d ] [ t1e; t2e; t1d; t2d ];
  (* the single-tier policies never touch the other tier *)
  match policy with
  | Config.Optimizing ->
      Alcotest.(check int) (name ^ ": optimizing has no tier-1 compiles") 0 t1c;
      Alcotest.(check int) (name ^ ": optimizing never promotes") 0
        jl.Jitlog.retiers;
      Alcotest.(check int) (name ^ ": optimizing never demotes") 0
        jl.Jitlog.demotions
  | Config.Baseline ->
      Alcotest.(check int) (name ^ ": baseline has no tier-2 compiles") 0 t2c;
      Alcotest.(check int) (name ^ ": baseline never promotes") 0
        jl.Jitlog.retiers;
      List.iter
        (fun (tr : Ir.trace) ->
          Alcotest.(check int)
            (Printf.sprintf "%s: baseline trace %d stays tier 1" name
               tr.Ir.trace_id)
            1 tr.Ir.tier)
        (Jitlog.traces jl)
  | Config.Adaptive -> ()

let policies =
  [
    ("optimizing", Config.Optimizing);
    ("baseline", Config.Baseline);
    ("adaptive", Config.Adaptive);
  ]

let with_policy p (c : Config.t) = { c with Config.tier_policy = p }
let with_threaded b (c : Config.t) = { c with Config.threaded_interp = b }

(* run one (program, policy) under both dispatch modes: byte-identical
   digests, and the accounting invariants hold; returns the reference
   run for cross-policy comparison *)
let check_policy_diff name ~lang ~config ~policy src =
  let config = with_policy policy config in
  let t = observe ~lang ~config:(with_threaded true config) src in
  let r = observe ~lang ~config:(with_threaded false config) src in
  Alcotest.(check string) (name ^ ": threaded = reference") r.digest t.digest;
  check_accounting name policy r;
  check_accounting (name ^ " [threaded]") policy t;
  r

(* sweep all three policies over one program: per-policy dispatch
   equivalence, plus output/outcome invariance across policies *)
let check_all_policies name ~lang ~config src =
  let runs =
    List.map
      (fun (pname, policy) ->
        ( pname,
          check_policy_diff
            (Printf.sprintf "%s [%s]" name pname)
            ~lang ~config ~policy src ))
      policies
  in
  match runs with
  | [] | [ _ ] -> assert false
  | (p0, r0) :: rest ->
      List.iter
        (fun (p, r) ->
          Alcotest.(check string)
            (Printf.sprintf "%s: %s output = %s output" name p p0)
            r0.output r.output;
          Alcotest.(check string)
            (Printf.sprintf "%s: %s outcome = %s outcome" name p p0)
            r0.outcome r.outcome)
        rest

(* ---------- deterministic programs ---------- *)

(* a simple hot loop: compiles at the baseline threshold and promotes
   cleanly under Adaptive (no guard instability) *)
let py_promote =
  "def f(n):\n\
  \    s = 0\n\
  \    for i in range(n):\n\
  \        s = s + i * 2\n\
  \    return s\n\
   print(f(3000))\n"

(* three independent biased branches in one loop body: several guards of
   the loop trace fail persistently, so bridges keep attaching — under
   Adaptive the promoted loop accumulates bridges and demotes *)
let py_phases =
  "a = 0\n\
   b = 0\n\
   c = 0\n\
   for i in range(3000):\n\
  \    if i % 2 == 0:\n\
  \        a = a + 1\n\
  \    else:\n\
  \        a = a + 2\n\
  \    if i % 3 == 0:\n\
  \        b = b + 1\n\
  \    else:\n\
  \        b = b + 2\n\
  \    if i % 5 == 0:\n\
  \        c = c + 1\n\
  \    else:\n\
  \        c = c + 2\n\
   print(a + b + c)\n"

let py_calls =
  "def sq(x):\n\
  \    return x * x\n\
   def f(n):\n\
  \    s = 0\n\
  \    for i in range(n):\n\
  \        s = (s + sq(i)) % 9973\n\
  \    return s\n\
   print(f(2500))\n"

let rk_tail =
  "(define (loop i acc)\n\
  \  (if (< i 6000) (loop (+ i 1) (+ acc i)) acc))\n\
   (display (loop 0 0))\n\
   (newline)\n"

let rk_deopt =
  "(define (step i acc)\n\
  \  (if (< i 1500) (+ acc i) (+ acc (* i 2))))\n\
   (define (loop i acc)\n\
  \  (if (< i 3000) (loop (+ i 1) (step i acc)) acc))\n\
   (display (loop 0 0))\n\
   (newline)\n"

let deterministic_pool =
  [
    ("py promote", Py, py_promote);
    ("py phased branches", Py, py_phases);
    ("py calls", Py, py_calls);
    ("rk tailcall loop", Rk, rk_tail);
    ("rk deopt crossing", Rk, rk_deopt);
  ]

let test_deterministic () =
  List.iter
    (fun (name, lang, src) ->
      check_all_policies name ~lang
        ~config:(Config.with_budget 30_000_000 Config.default)
        src)
    deterministic_pool

let test_budget_exhaustion () =
  (* small budgets land the exhaustion point mid-run — inside the
     baseline tier, mid-promotion, inside bridges — and the stop point
     must be identical in both dispatch modes for every policy *)
  List.iter
    (fun budget ->
      List.iter
        (fun (name, lang, src) ->
          List.iter
            (fun (pname, policy) ->
              ignore
                (check_policy_diff
                   (Printf.sprintf "%s [%s, budget %d]" name pname budget)
                   ~lang
                   ~config:(Config.with_budget budget Config.default)
                   ~policy src))
            policies)
        deterministic_pool)
    [ 1_000; 10_000; 100_000 ]

(* the full adaptive lifecycle — promote, grow bridges, demote, re-promote
   at a doubled threshold, pin at tier 1 once max_demotions is exhausted —
   held byte-identical across dispatch modes *)
let adaptive_lifecycle_config =
  {
    Config.default with
    Config.jit_threshold = 7;
    bridge_threshold = 30;
    insn_budget = 100_000_000;
    tier_policy = Config.Adaptive;
    tier2_threshold = 8;
    tier_stable_every = 0;
    demote_bridges = 2;
    max_demotions = 2;
  }

let test_adaptive_lifecycle_diff () =
  let r =
    check_policy_diff "adaptive lifecycle" ~lang:Py
      ~config:adaptive_lifecycle_config ~policy:Config.Adaptive py_phases
  in
  let jl = r.jitlog in
  Alcotest.(check string) "output" "14900\n" r.output;
  Alcotest.(check bool) "promotions happened" true (jl.Jitlog.retiers >= 1);
  Alcotest.(check bool) "demotions happened" true (jl.Jitlog.demotions >= 1);
  (* oscillation is damped: each demotion needs a fresh promotion, and
     the site stops demoting once max_demotions is exhausted *)
  Alcotest.(check bool) "demotions bounded by max_demotions + 1" true
    (jl.Jitlog.demotions <= adaptive_lifecycle_config.Config.max_demotions + 1)

(* warmup: the baseline tier's lower threshold reaches compiled code
   strictly earlier than the one-shot optimizing tier *)
let test_warmup_first_entry () =
  let config = Config.with_budget 30_000_000 Config.default in
  let first policy =
    let r =
      observe ~lang:Py ~config:(with_policy policy config) py_promote
    in
    r.jitlog.Jitlog.first_entry_insns
  in
  let opt = first Config.Optimizing in
  let base = first Config.Baseline in
  let adapt = first Config.Adaptive in
  Alcotest.(check bool) "optimizing entered a trace" true (opt > 0);
  Alcotest.(check bool)
    (Printf.sprintf "baseline warms up earlier (%d < %d)" base opt)
    true (base < opt);
  Alcotest.(check bool)
    (Printf.sprintf "adaptive warms up earlier (%d < %d)" adapt opt)
    true (adapt < opt);
  Alcotest.(check int) "adaptive first entry = baseline first entry" base adapt

(* ---------- random programs ---------- *)

(* pylite: terminating by construction (for-range over constants only);
   division-free arithmetic plus [%] by positive constants *)
let gen_py_program rng =
  let buf = Buffer.create 256 in
  let vars = [| "a"; "b"; "c" |] in
  let var () = vars.(Random.State.int rng 3) in
  let rec expr depth =
    if depth = 0 then
      if Random.State.bool rng then var ()
      else string_of_int (Random.State.int rng 20)
    else
      match Random.State.int rng 5 with
      | 0 -> Printf.sprintf "(%s + %s)" (expr (depth - 1)) (expr (depth - 1))
      | 1 -> Printf.sprintf "(%s - %s)" (expr (depth - 1)) (expr (depth - 1))
      | 2 -> Printf.sprintf "(%s * %s)" (expr (depth - 1)) (expr (depth - 1))
      | 3 ->
          Printf.sprintf "(%s %% %d)" (expr (depth - 1))
            (1 + Random.State.int rng 97)
      | _ -> Printf.sprintf "sq(%s)" (expr (depth - 1))
  in
  Buffer.add_string buf "def sq(x):\n    return x * x\n";
  Buffer.add_string buf "a = 1\nb = 2\nc = 3\n";
  let stmt indent =
    let pad = String.make indent ' ' in
    match Random.State.int rng 3 with
    | 0 -> Printf.sprintf "%s%s = %s\n" pad (var ()) (expr 2)
    | 1 ->
        Printf.sprintf "%sif %s < %s:\n%s    %s = %s\n%selse:\n%s    %s = %s\n"
          pad (var ()) (expr 1) pad (var ()) (expr 2) pad pad (var ()) (expr 2)
    | _ ->
        Printf.sprintf "%sfor i%d in range(%d):\n%s    %s = %s + i%d\n" pad
          indent
          (2 + Random.State.int rng 30)
          pad (var ()) (var ()) indent
  in
  let n_top = 2 + Random.State.int rng 4 in
  for _ = 1 to n_top do
    if Random.State.int rng 3 = 0 then begin
      Buffer.add_string buf
        (Printf.sprintf "for k in range(%d):\n" (50 + Random.State.int rng 400));
      let body = 1 + Random.State.int rng 2 in
      for _ = 1 to body do
        Buffer.add_string buf (stmt 4)
      done
    end
    else Buffer.add_string buf (stmt 0)
  done;
  Buffer.add_string buf "print(a + b + c)\n";
  Buffer.contents buf

(* rklite: a tail-recursive loop template with random constants and a
   random accumulator expression *)
let gen_rk_program rng =
  let iters = 100 + Random.State.int rng 4000 in
  let flip = Random.State.int rng iters in
  let m = 1 + Random.State.int rng 97 in
  Printf.sprintf
    "(define (loop i acc)\n\
    \  (if (< i %d)\n\
    \      (loop (+ i 1)\n\
    \            (if (< i %d) (+ acc (* i %d)) (remainder (+ acc i) %d)))\n\
    \      acc))\n\
     (display (loop 0 0))\n\
     (newline)\n"
    iters flip
    (1 + Random.State.int rng 5)
    m

let prop_random_programs =
  QCheck.Test.make ~count:30
    ~name:"tier policies are dispatch-identical on random programs"
    (QCheck.make QCheck.Gen.(int_range 1 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed; 0x71E2 |] in
      let lang, src =
        if Random.State.bool rng then (Py, gen_py_program rng)
        else (Rk, gen_rk_program rng)
      in
      let _, policy = List.nth policies (Random.State.int rng 3) in
      let budget =
        match Random.State.int rng 3 with
        | 0 -> 2_000 + Random.State.int rng 50_000
        | _ -> 10_000_000
      in
      (* occasionally squeeze the tier knobs so promotion and demotion
         fire inside the random program too *)
      let base =
        if Random.State.int rng 2 = 0 then Config.default
        else
          {
            Config.default with
            Config.jit_threshold = 7;
            tier1_threshold = 5;
            tier2_threshold = 6;
            tier_stable_every = Random.State.int rng 3;
            demote_bridges = 2;
          }
      in
      let config =
        with_policy policy (Config.with_budget budget base)
      in
      let t = observe ~lang ~config:(with_threaded true config) src in
      let r = observe ~lang ~config:(with_threaded false config) src in
      if t.digest <> r.digest then
        QCheck.Test.fail_reportf
          "seed %d diverged on:\n%s\n--- reference:\n%s\n--- threaded:\n%s"
          seed src r.digest t.digest
      else begin
        check_accounting (Printf.sprintf "seed %d" seed) policy r;
        true
      end)

let suite =
  [
    Alcotest.test_case "deterministic programs x policies" `Quick
      test_deterministic;
    Alcotest.test_case "budget exhaustion points x policies" `Quick
      test_budget_exhaustion;
    Alcotest.test_case "adaptive lifecycle is dispatch-identical" `Quick
      test_adaptive_lifecycle_diff;
    Alcotest.test_case "warmup: first compiled entry per policy" `Quick
      test_warmup_first_entry;
    QCheck_alcotest.to_alcotest prop_random_programs;
  ]
