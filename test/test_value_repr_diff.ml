(** Representation-differential tests for the immediate-tagged value
    model.

    The abstract [Value.t] packs nil/bool/int into OCaml native tagged
    immediates and keeps float/str/obj boxed; everything observable —
    arithmetic semantics, overflow normalization, hashing, simulated
    digests — must be indistinguishable from the old concrete variant.
    Three layers of evidence:

    - unit tests pinning EVERY constructor/destructor pair in
      [value.mli] as an identity (and the tag predicates as mutually
      exclusive), so no future repacking can silently change a kind;
    - QCheck properties holding [Rarith] to an exact [Rbigint] oracle
      at the native-int boundary (min_int negation, lshift past the
      word, add/sub/mul overflow → bigint promotion, and the
      fits-back-in-an-int ⇒ immediate normalization direction);
    - digest differentials over RANDOM generated programs: host-side
      knobs (threaded dispatch, frame pooling) must leave the simulated
      machine counters and program output byte-identical in both VMs. *)

module V = Mtj_rt.Value
module Ctx = Mtj_rt.Ctx
module Rarith = Mtj_rt.Rarith
module Rbigint = Mtj_rt.Rbigint
module Config = Mtj_core.Config
module Counters = Mtj_machine.Counters
module Engine = Mtj_machine.Engine

let ctx () = Ctx.create ~config:Config.no_jit ()

(* ---------- constructor/destructor identities ---------- *)

let boundary_ints =
  [ 0; 1; -1; 7; -42; 255; 256; 65_535; 1 lsl 40; max_int - 1; max_int;
    min_int + 1; min_int ]

let test_int_identity () =
  List.iter
    (fun i ->
      let v = V.of_int i in
      Alcotest.(check bool) (Printf.sprintf "is_int %d" i) true (V.is_int v);
      Alcotest.(check int)
        (Printf.sprintf "to_int (of_int %d)" i)
        i (V.to_int_unchecked v);
      (match V.view v with
      | V.Int j ->
          Alcotest.(check int) (Printf.sprintf "view Int %d" i) i j
      | _ -> Alcotest.failf "view (of_int %d) is not Int" i);
      (* immediates: building the same int twice is the same word *)
      if not (V.of_int i == V.of_int i) then
        Alcotest.failf "of_int %d allocated" i)
    boundary_ints

let test_bool_nil_identity () =
  Alcotest.(check bool) "to_bool true_" true (V.to_bool_unchecked V.true_);
  Alcotest.(check bool) "to_bool false_" false (V.to_bool_unchecked V.false_);
  Alcotest.(check bool) "of_bool true == true_" true
    (V.of_bool true == V.true_);
  Alcotest.(check bool) "of_bool false == false_" true
    (V.of_bool false == V.false_);
  (match V.view V.true_ with
  | V.Bool true -> ()
  | _ -> Alcotest.fail "view true_ is not Bool true");
  (match V.view V.false_ with
  | V.Bool false -> ()
  | _ -> Alcotest.fail "view false_ is not Bool false");
  (match V.view V.nil with
  | V.Nil -> ()
  | _ -> Alcotest.fail "view nil is not Nil");
  Alcotest.(check bool) "is_nil nil" true (V.is_nil V.nil)

let test_float_identity () =
  List.iter
    (fun f ->
      let v = V.of_float f in
      Alcotest.(check bool) (Printf.sprintf "is_float %h" f) true
        (V.is_float v);
      (* bit-exact round-trip: covers nan, -0. and infinities *)
      Alcotest.(check int64)
        (Printf.sprintf "to_float (of_float %h) bits" f)
        (Int64.bits_of_float f)
        (Int64.bits_of_float (V.to_float_unchecked v));
      match V.view v with
      | V.Float g ->
          Alcotest.(check int64)
            (Printf.sprintf "view Float %h bits" f)
            (Int64.bits_of_float f) (Int64.bits_of_float g)
      | _ -> Alcotest.failf "view (of_float %h) is not Float" f)
    [ 0.0; -0.0; 1.5; -3.25; Float.nan; Float.infinity; Float.neg_infinity;
      1e300; 4.2e-310 (* subnormal *) ]

let test_str_identity () =
  let s = "hello" in
  let v = V.of_str s in
  Alcotest.(check bool) "is_str" true (V.is_str v);
  (* the destructor returns the very same host string, not a copy *)
  Alcotest.(check bool) "to_str physical" true (V.to_str_unchecked v == s);
  (match V.view v with
  | V.Str s' -> Alcotest.(check bool) "view Str physical" true (s' == s)
  | _ -> Alcotest.fail "view (of_str s) is not Str");
  let e = V.of_str "" in
  Alcotest.(check string) "empty string" "" (V.to_str_unchecked e)

let mk_obj payload =
  {
    V.uid = 424_242;
    payload;
    gc_gen = 0;
    gc_age = 0;
    gc_mark = false;
    remembered = false;
    words = 0;
  }

let test_obj_identity () =
  let o = mk_obj (V.Tuple [| V.of_int 1; V.nil |]) in
  let v = V.of_obj o in
  Alcotest.(check bool) "is_obj" true (V.is_obj v);
  Alcotest.(check bool) "to_obj physical" true (V.to_obj_unchecked v == o);
  match V.view v with
  | V.Obj o' -> Alcotest.(check bool) "view Obj physical" true (o' == o)
  | _ -> Alcotest.fail "view (of_obj o) is not Obj"

let test_predicate_exclusivity () =
  let kinds =
    [
      ("nil", V.nil);
      ("true", V.true_);
      ("int 0", V.of_int 0);
      ("int 1", V.of_int 1);
      ("int min_int", V.of_int min_int);
      ("float 0.", V.of_float 0.0);
      ("str \"\"", V.of_str "");
      ("obj", V.of_obj (mk_obj (V.Tuple [||])));
    ]
  in
  List.iter
    (fun (label, v) ->
      let n =
        List.length
          (List.filter
             (fun p -> p v)
             [ V.is_nil; V.is_bool; V.is_int; V.is_float; V.is_str; V.is_obj ])
      in
      Alcotest.(check int) (label ^ ": exactly one tag") 1 n)
    kinds

(* ---------- arithmetic against the bigint oracle ---------- *)

(* a runtime number must agree with the exact oracle AND sit on the
   right side of the immediate/bigint divide: results that fit a native
   int are immediates, results that do not are bigint objects *)
let agrees_with_oracle v (expected : Rbigint.t) =
  match V.view v with
  | V.Int i ->
      Rbigint.equal (Rbigint.of_int i) expected
      && Rbigint.to_int_opt expected <> None
  | V.Obj { payload = V.Bigint b; _ } ->
      Rbigint.equal b expected && Rbigint.to_int_opt expected = None
  | _ -> false

let gen_boundary_int =
  QCheck.Gen.(
    frequency
      [
        (3, int_range (-1000) 1000);
        (3, int);
        ( 2,
          oneofl
            [
              min_int; min_int + 1; max_int; max_int - 1; 0; 1; -1;
              1 lsl 61; -(1 lsl 61); (1 lsl 62) - 1;
            ] );
      ])

let arb_boundary_int = QCheck.make ~print:string_of_int gen_boundary_int

let arb_boundary_pair =
  QCheck.make
    ~print:(fun (a, b) -> Printf.sprintf "(%d, %d)" a b)
    QCheck.Gen.(pair gen_boundary_int gen_boundary_int)

let prop_addsubmul_oracle =
  QCheck.Test.make ~name:"add/sub/mul match the bigint oracle" ~count:1000
    arb_boundary_pair (fun (a, b) ->
      let c = ctx () in
      let va = V.of_int a and vb = V.of_int b in
      let big = Rbigint.of_int in
      agrees_with_oracle (Rarith.add c va vb) (Rbigint.add (big a) (big b))
      && agrees_with_oracle (Rarith.sub c va vb) (Rbigint.sub (big a) (big b))
      && agrees_with_oracle (Rarith.mul c va vb) (Rbigint.mul (big a) (big b)))

let prop_neg_oracle =
  QCheck.Test.make ~name:"negation matches the bigint oracle (incl. min_int)"
    ~count:500 arb_boundary_int (fun a ->
      let c = ctx () in
      agrees_with_oracle (Rarith.neg c (V.of_int a))
        (Rbigint.neg (Rbigint.of_int a)))

let prop_shift_oracle =
  QCheck.Test.make ~name:"lshift/rshift match the bigint oracle" ~count:500
    (QCheck.make
       ~print:(fun (a, k) -> Printf.sprintf "(%d, %d)" a k)
       QCheck.Gen.(pair gen_boundary_int (int_range 0 70)))
    (fun (a, k) ->
      let c = ctx () in
      let big = Rbigint.of_int a in
      agrees_with_oracle (Rarith.lshift c (V.of_int a) k) (Rbigint.lshift big k)
      && agrees_with_oracle (Rarith.rshift c (V.of_int a) k)
           (Rbigint.rshift big k))

(* the pinned corner cases the properties are built around *)
let test_overflow_pins () =
  let c = ctx () in
  let s v = V.repr v in
  (* -min_int = 2^62: one past max_int, must promote *)
  Alcotest.(check string) "-min_int" "4611686018427387904"
    (s (Rarith.neg c (V.of_int min_int)));
  Alcotest.(check string) "max_int + 1" "4611686018427387904"
    (s (Rarith.add c (V.of_int max_int) (V.of_int 1)));
  Alcotest.(check string) "min_int - 1" "-4611686018427387905"
    (s (Rarith.sub c (V.of_int min_int) (V.of_int 1)));
  Alcotest.(check string) "min_int << 1" "-9223372036854775808"
    (s (Rarith.lshift c (V.of_int min_int) 1));
  (* ...and the normalization direction back down to an immediate *)
  let back = Rarith.sub c (Rarith.add c (V.of_int max_int) (V.of_int 1))
      (V.of_int 1) in
  Alcotest.(check bool) "(max_int + 1) - 1 is immediate again" true
    (V.is_int back);
  Alcotest.(check int) "(max_int + 1) - 1 value" max_int
    (V.to_int_unchecked back)

(* hash/equality agreement across the immediate/boxed divide *)
let prop_imm_float_hash =
  QCheck.Test.make
    ~name:"immediate int and boxed float twins agree on py_eq/py_hash"
    ~count:1000
    (QCheck.make ~print:string_of_int
       QCheck.Gen.(
         oneof
           [
             int_range (-5000) 5000;
             int_range (-9_000_000_000_000_000) 9_000_000_000_000_000;
           ]))
    (fun i ->
      let vi = V.of_int i and vf = V.of_float (float_of_int i) in
      V.py_eq vi vf && V.py_hash vi = V.py_hash vf)

(* ---------- random-program digest differentials ---------- *)

(* tiny arithmetic expression language rendered to both guest syntaxes;
   division is kept away from zero by construction *)
type expr =
  | Lit of int
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Neg of expr

let rec py_str = function
  | Lit n -> if n < 0 then Printf.sprintf "(0 - %d)" (-n) else string_of_int n
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (py_str a) (py_str b)
  | Sub (a, b) -> Printf.sprintf "(%s - %s)" (py_str a) (py_str b)
  | Mul (a, b) -> Printf.sprintf "(%s * %s)" (py_str a) (py_str b)
  | Neg a -> Printf.sprintf "(0 - %s)" (py_str a)

let rec rk_str = function
  | Lit n -> if n < 0 then Printf.sprintf "(- 0 %d)" (-n) else string_of_int n
  | Add (a, b) -> Printf.sprintf "(+ %s %s)" (rk_str a) (rk_str b)
  | Sub (a, b) -> Printf.sprintf "(- %s %s)" (rk_str a) (rk_str b)
  | Mul (a, b) -> Printf.sprintf "(* %s %s)" (rk_str a) (rk_str b)
  | Neg a -> Printf.sprintf "(- 0 %s)" (rk_str a)

let gen_expr =
  QCheck.Gen.(
    sized_size (int_range 0 4) @@ fix (fun self n ->
        let lit =
          map
            (fun i -> Lit i)
            (oneof
               [
                 int_range (-100) 100;
                 oneofl [ 4611686018427387903 (* max_int *); 1000000007; 0; 1 ];
               ])
        in
        if n = 0 then lit
        else
          frequency
            [
              (1, lit);
              ( 4,
                map2
                  (fun op (a, b) -> op a b)
                  (oneofl
                     [
                       (fun a b -> Add (a, b));
                       (fun a b -> Sub (a, b));
                       (fun a b -> Mul (a, b));
                     ])
                  (pair (self (n / 2)) (self (n / 2))) );
              (1, map (fun a -> Neg a) (self (n / 2)));
            ]))

let arb_expr = QCheck.make ~print:py_str gen_expr

let snap_str (s : Counters.snapshot) =
  Printf.sprintf "i=%d c=%.17g b=%d bm=%d l=%d s=%d cm=%d" s.Counters.insns
    s.Counters.cycles s.Counters.branches s.Counters.branch_misses
    s.Counters.loads s.Counters.stores s.Counters.cache_misses

let status_of = function
  | Mtj_rjit.Driver.Completed _ -> "ok"
  | Mtj_rjit.Driver.Budget_exceeded -> "budget"
  | Mtj_rjit.Driver.Runtime_error e -> "failed: " ^ e

let digest_py ~config src =
  let vm = Mtj_pylite.Vm.create ~config () in
  let outcome = Mtj_pylite.Vm.run_source vm src in
  Printf.sprintf "%s|%s|%s" (status_of outcome)
    (Mtj_pylite.Vm.output vm)
    (snap_str (Counters.total (Engine.counters (Mtj_pylite.Vm.engine vm))))

let digest_rk ~config src =
  let vm = Mtj_rklite.Kvm.create ~config () in
  let outcome = Mtj_rklite.Kvm.run_source vm src in
  Printf.sprintf "%s|%s|%s" (status_of outcome)
    (Mtj_rklite.Kvm.output vm)
    (snap_str (Counters.total (Engine.counters (Mtj_rklite.Kvm.engine vm))))

(* the four host-side configurations that must be indistinguishable in
   the simulation: threaded dispatch x frame pooling *)
let host_knob_configs base =
  [
    { base with Config.threaded_interp = true; frame_pool = true };
    { base with Config.threaded_interp = true; frame_pool = false };
    { base with Config.threaded_interp = false; frame_pool = true };
    { base with Config.threaded_interp = false; frame_pool = false };
  ]

let all_equal = function
  | [] | [ _ ] -> true
  | d :: rest -> List.for_all (String.equal d) rest

let base_config = Config.with_budget 500_000 Config.no_jit

let prop_py_digest =
  QCheck.Test.make
    ~name:"pylite: random expr digest invariant under host knobs" ~count:40
    arb_expr (fun e ->
      let src = Printf.sprintf "print(%s)\n" (py_str e) in
      all_equal
        (List.map (fun c -> digest_py ~config:c src)
           (host_knob_configs base_config)))

let prop_rk_digest =
  QCheck.Test.make
    ~name:"rklite: random expr digest invariant under host knobs" ~count:40
    arb_expr (fun e ->
      let src = Printf.sprintf "(display %s)" (rk_str e) in
      all_equal
        (List.map (fun c -> digest_rk ~config:c src)
           (host_knob_configs base_config)))

(* a JITted loop over a random expression: the trace executor and both
   interpreter tiers must tell the same story *)
let prop_py_loop_digest =
  QCheck.Test.make
    ~name:"pylite: random JITted loop digest invariant under host knobs"
    ~count:10 arb_expr (fun e ->
      let src =
        Printf.sprintf
          "acc = 0\ni = 0\nwhile i < 300:\n    acc = acc + %s\n    i = i + 1\nprint(acc)\n"
          (py_str e)
      in
      let base = Config.with_budget 2_000_000 Config.default in
      all_equal
        (List.map (fun c -> digest_py ~config:c src) (host_knob_configs base)))

let suite =
  [
    Alcotest.test_case "int constructor/destructor identity" `Quick
      test_int_identity;
    Alcotest.test_case "bool/nil constructor/destructor identity" `Quick
      test_bool_nil_identity;
    Alcotest.test_case "float constructor/destructor identity" `Quick
      test_float_identity;
    Alcotest.test_case "str constructor/destructor identity" `Quick
      test_str_identity;
    Alcotest.test_case "obj constructor/destructor identity" `Quick
      test_obj_identity;
    Alcotest.test_case "tag predicates mutually exclusive" `Quick
      test_predicate_exclusivity;
    Alcotest.test_case "overflow promotion/normalization pins" `Quick
      test_overflow_pins;
    QCheck_alcotest.to_alcotest prop_addsubmul_oracle;
    QCheck_alcotest.to_alcotest prop_neg_oracle;
    QCheck_alcotest.to_alcotest prop_shift_oracle;
    QCheck_alcotest.to_alcotest prop_imm_float_hash;
    QCheck_alcotest.to_alcotest prop_py_digest;
    QCheck_alcotest.to_alcotest prop_rk_digest;
    QCheck_alcotest.to_alcotest prop_py_loop_digest;
  ]
