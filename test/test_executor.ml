(** Direct tests of the trace executor's building blocks: frame
    materialization from resume data (including virtual objects), guard
    evaluation, and blackhole accounting. *)

open Mtj_rjit
module V = Mtj_rt.Value
module Counters = Mtj_machine.Counters
module Engine = Mtj_machine.Engine
module Phase = Mtj_core.Phase

let rtc () = Mtj_rt.Ctx.create ()

let snap ?(pc = 3) locals stack =
  {
    Ir.snap_code = 7;
    snap_pc = pc;
    snap_locals = Array.of_list locals;
    snap_stack = Array.of_list stack;
    snap_discard = false;
  }

let test_materialize_plain () =
  let resume =
    {
      Ir.frames = [ snap [ Ir.S_reg 0; Ir.S_const (V.of_int 9) ] [ Ir.S_reg 1 ] ];
      r_virtuals = [||];
    }
  in
  let frames =
    Executor.materialize_frames (rtc ()) resume [| V.of_int 1; V.of_str "s" |]
  in
  match frames with
  | [ f ] ->
      Alcotest.(check int) "pc" 3 f.Executor.df_pc;
      Alcotest.(check bool) "local0" true (f.Executor.df_locals.(0) = V.of_int 1);
      Alcotest.(check bool) "local1" true (f.Executor.df_locals.(1) = V.of_int 9);
      Alcotest.(check bool) "stack" true (f.Executor.df_stack.(0) = V.of_str "s")
  | _ -> Alcotest.fail "expected one frame"

let test_materialize_tuple_virtual () =
  let resume =
    {
      Ir.frames = [ snap [ Ir.S_virtual 0 ] [] ];
      r_virtuals = [| Ir.V_tuple [| Ir.S_reg 0; Ir.S_const (V.of_int 2) |] |];
    }
  in
  let frames = Executor.materialize_frames (rtc ()) resume [| V.of_int 1 |] in
  let v = (List.hd frames).Executor.df_locals.(0) in
  match V.view v with
  | V.Obj { V.payload = V.Tuple [| x; y |]; _ }
    when V.py_eq x (V.of_int 1) && V.py_eq y (V.of_int 2) ->
      ()
  | _ -> Alcotest.fail ("not the expected tuple: " ^ V.repr v)

let test_materialize_nested_virtual () =
  (* virtual 0 is a tuple whose first element is virtual 1 (a cell) *)
  let resume =
    {
      Ir.frames = [ snap [ Ir.S_virtual 0 ] [] ];
      r_virtuals =
        [|
          Ir.V_tuple [| Ir.S_virtual 1; Ir.S_const (V.of_int 5) |];
          Ir.V_cell (Ir.S_reg 0);
        |];
    }
  in
  let frames = Executor.materialize_frames (rtc ()) resume [| V.of_int 42 |] in
  let v = (List.hd frames).Executor.df_locals.(0) in
  match V.view v with
  | V.Obj { V.payload = V.Tuple [| first; _ |]; _ } -> (
      match V.view first with
      | V.Obj { V.payload = V.Cell c; _ } ->
          Alcotest.(check bool) "cell contents" true (c.cell = V.of_int 42)
      | _ -> Alcotest.fail ("wrong shape: " ^ V.repr v))
  | _ -> Alcotest.fail ("wrong shape: " ^ V.repr v)

let test_materialize_shared_virtual () =
  (* the same virtual referenced from two slots materializes ONCE
     (physical identity preserved, as RPython's resume data guarantees) *)
  let resume =
    {
      Ir.frames = [ snap [ Ir.S_virtual 0; Ir.S_virtual 0 ] [] ];
      r_virtuals = [| Ir.V_tuple [| Ir.S_const (V.of_int 1) |] |];
    }
  in
  let frames = Executor.materialize_frames (rtc ()) resume [||] in
  let f = List.hd frames in
  Alcotest.(check bool) "same object" true
    (f.Executor.df_locals.(0) == f.Executor.df_locals.(1))

let test_materialize_cyclic_virtual () =
  (* a virtual instance whose field points back at itself must not loop *)
  let c = rtc () in
  let cls =
    Mtj_rt.Gc_sim.alloc (Mtj_rt.Ctx.gc c)
      (V.Class
         {
           V.cls_id = -99;
           cls_name = "node";
           layout = [| "next" |];
           attrs = [];
           parent = None;
         })
  in
  let resume =
    {
      Ir.frames = [ snap [ Ir.S_virtual 0 ] [] ];
      r_virtuals =
        [| Ir.V_instance { v_cls = cls; v_fields = [| Ir.S_virtual 0 |] } |];
    }
  in
  let frames = Executor.materialize_frames c resume [||] in
  match V.view (List.hd frames).Executor.df_locals.(0) with
  | V.Obj ({ V.payload = V.Instance i; _ } as o) -> (
      match V.view i.V.fields.(0) with
      | V.Obj o' -> Alcotest.(check bool) "self loop" true (o' == o)
      | _ -> Alcotest.fail "field not an object")
  | _ -> Alcotest.fail "expected instance"

let test_materialize_list_virtual () =
  let resume =
    {
      Ir.frames = [ snap [ Ir.S_virtual 0 ] [] ];
      r_virtuals =
        [| Ir.V_list [| Ir.S_const (V.of_int 1); Ir.S_const (V.of_int 2) |] |];
    }
  in
  let c = rtc () in
  let frames = Executor.materialize_frames c resume [||] in
  match (List.hd frames).Executor.df_locals.(0) with
  | v when (match V.view v with
            | V.Obj { V.payload = V.List _; _ } -> true
            | _ -> false) ->
      let l =
        match V.view v with
        | V.Obj { V.payload = V.List l; _ } -> l
        | _ -> assert false
      in
      Alcotest.(check int) "len 2" 2 (Mtj_rt.Rlist.length l);
      Alcotest.(check bool) "second elem" true
        (Mtj_rt.Rlist.get c (Mtj_rjit.Semantics.as_obj v) 1 = V.of_int 2)
  | _ -> Alcotest.fail "expected list"

(* --- guard evaluation --- *)

let mk_guard gkind =
  {
    Ir.guard_id = 1;
    gkind;
    resume = { Ir.frames = []; r_virtuals = [||] };
    fail_count = 0;
    bridge = None;
    bridgeable = true;
  }

let holds g vals = Executor.guard_holds (mk_guard g) (Array.of_list vals)

let test_guard_kinds () =
  Alcotest.(check bool) "true holds" true (holds Ir.G_true [ V.of_bool true ]);
  Alcotest.(check bool) "true fails on 0" false (holds Ir.G_true [ V.of_int 0 ]);
  Alcotest.(check bool) "false holds" true (holds Ir.G_false [ V.nil ]);
  Alcotest.(check bool) "value" true
    (holds (Ir.G_value (V.of_int 3)) [ V.of_int 3 ]);
  Alcotest.(check bool) "value fail" false
    (holds (Ir.G_value (V.of_int 3)) [ V.of_int 4 ]);
  Alcotest.(check bool) "class int" true
    (holds (Ir.G_class Ir.Ty_int) [ V.of_int 3 ]);
  Alcotest.(check bool) "class mismatch" false
    (holds (Ir.G_class Ir.Ty_int) [ V.of_str "x" ]);
  Alcotest.(check bool) "nonnull" true (holds Ir.G_nonnull [ V.of_int 0 ]);
  Alcotest.(check bool) "nonnull fail" false (holds Ir.G_nonnull [ V.nil ])

let test_guard_overflow_kinds () =
  Alcotest.(check bool) "add ok" true
    (holds Ir.G_no_ovf_add [ V.of_int 1; V.of_int 2 ]);
  Alcotest.(check bool) "add ovf" false
    (holds Ir.G_no_ovf_add [ V.of_int max_int; V.of_int 1 ]);
  Alcotest.(check bool) "sub ovf" false
    (holds Ir.G_no_ovf_sub [ V.of_int min_int; V.of_int 1 ]);
  Alcotest.(check bool) "mul ovf" false
    (holds Ir.G_no_ovf_mul [ V.of_int max_int; V.of_int 2 ]);
  Alcotest.(check bool) "index in range" true
    (holds Ir.G_index_lt [ V.of_int 3; V.of_int 4 ]);
  Alcotest.(check bool) "index at bound" false
    (holds Ir.G_index_lt [ V.of_int 4; V.of_int 4 ]);
  Alcotest.(check bool) "index negative" false
    (holds Ir.G_index_lt [ V.of_int (-1); V.of_int 4 ])

let test_guard_global_version () =
  let cell = ref 5 in
  Alcotest.(check bool) "version match" true
    (holds (Ir.G_global_version (cell, 5)) []);
  incr cell;
  Alcotest.(check bool) "version stale" false
    (holds (Ir.G_global_version (cell, 5)) [])

(* --- blackhole accounting --- *)

let test_blackhole_charges_phase () =
  let c = rtc () in
  let resume =
    {
      Ir.frames = [ snap [ Ir.S_reg 0; Ir.S_reg 1 ] [ Ir.S_const V.nil ] ];
      r_virtuals = [||];
    }
  in
  let frames =
    Executor.blackhole c resume [| V.of_int 1; V.of_int 2 |] ~guard_id:17
  in
  Alcotest.(check int) "one frame" 1 (List.length frames);
  let bh =
    (Counters.phase (Engine.counters (Mtj_rt.Ctx.engine c)) Phase.Blackhole)
      .Counters.insns
  in
  Alcotest.(check bool) "blackhole insns charged" true (bh > 100);
  (* and nothing leaked into the interpreter phase *)
  let interp =
    (Counters.phase (Engine.counters (Mtj_rt.Ctx.engine c)) Phase.Interpreter)
      .Counters.insns
  in
  Alcotest.(check int) "interp untouched" 0 interp

(* --- render helpers --- *)

let test_stacked_bar () =
  let bar =
    Mtj_harness.Render.stacked_bar ~width:10
      [ (Phase.Interpreter, 0.5); (Phase.Jit, 0.5) ]
  in
  Alcotest.(check int) "width" 10 (String.length bar);
  Alcotest.(check string) "halves" "IIIIIJJJJJ" bar

let test_stacked_bar_rounding () =
  (* fractions that don't divide the width evenly still fill exactly *)
  let bar =
    Mtj_harness.Render.stacked_bar ~width:10
      [ (Phase.Interpreter, 1.0 /. 3.0); (Phase.Jit, 2.0 /. 3.0) ]
  in
  Alcotest.(check int) "width" 10 (String.length bar);
  Alcotest.(check bool) "no gap" true (not (String.contains bar ' '))

let test_sparkline () =
  let s = Mtj_harness.Render.sparkline [| 0.0; 0.5; 1.0 |] in
  Alcotest.(check int) "length" 3 (String.length s);
  Alcotest.(check bool) "monotone" true (s.[0] < s.[1] && s.[1] < s.[2]);
  Alcotest.(check bool) "max char" true (s.[2] = '@')

let test_mean_std () =
  let m, s = Mtj_harness.Render.mean_std [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 5.0 m;
  Alcotest.(check (float 1e-9)) "std" 2.0 s;
  let m0, s0 = Mtj_harness.Render.mean_std [] in
  Alcotest.(check (float 0.0)) "empty mean" 0.0 m0;
  Alcotest.(check (float 0.0)) "empty std" 0.0 s0

let suite =
  [
    Alcotest.test_case "materialize plain frame" `Quick test_materialize_plain;
    Alcotest.test_case "materialize tuple virtual" `Quick
      test_materialize_tuple_virtual;
    Alcotest.test_case "materialize nested virtual" `Quick
      test_materialize_nested_virtual;
    Alcotest.test_case "shared virtual materializes once" `Quick
      test_materialize_shared_virtual;
    Alcotest.test_case "cyclic virtual terminates" `Quick
      test_materialize_cyclic_virtual;
    Alcotest.test_case "materialize list virtual" `Quick
      test_materialize_list_virtual;
    Alcotest.test_case "guard kinds" `Quick test_guard_kinds;
    Alcotest.test_case "overflow/index guards" `Quick test_guard_overflow_kinds;
    Alcotest.test_case "global version guard" `Quick test_guard_global_version;
    Alcotest.test_case "blackhole charges its phase" `Quick
      test_blackhole_charges_phase;
    Alcotest.test_case "stacked bar" `Quick test_stacked_bar;
    Alcotest.test_case "stacked bar rounding" `Quick test_stacked_bar_rounding;
    Alcotest.test_case "sparkline" `Quick test_sparkline;
    Alcotest.test_case "mean/std" `Quick test_mean_std;
  ]
