(** Round-trip tests for the observability subsystem: record a real run
    through {!Mtj_obs.Sink}, export trace / metrics / timings JSON,
    re-parse the bytes with {!Mtj_obs.Json.parse} and check them with
    the same {!Mtj_obs.Validate} used by the CI artifact gate.  The key
    cross-layer assertion: per-phase self time recovered purely from the
    exported span stream equals what the machine counters attributed to
    each phase. *)

open Mtj_obs
module Engine = Mtj_machine.Engine
module Counters = Mtj_machine.Counters
module B = Mtj_benchmarks.Registry
module Phase = Mtj_core.Phase

type observed = {
  o_eng : Engine.t;
  o_sink : Sink.t;
  o_baseline : (Phase.t * Counters.snapshot) list;
  o_jitlog : Mtj_rjit.Jitlog.t;
  o_gc : Mtj_rt.Gc_sim.stats;
  o_hstats : Mtj_rt.Hstats.t;
  o_status : string;
}

let run_observed ?capacity ~budget name =
  let config =
    Mtj_core.Config.with_budget budget Mtj_core.Config.default
  in
  let b = B.find_exn ~lang:B.Py name in
  let vm = Mtj_pylite.Vm.create ~config () in
  let eng = Mtj_pylite.Vm.engine vm in
  let baseline =
    List.map (fun p -> (p, Counters.phase (Engine.counters eng) p)) Phase.all
  in
  let sink = Sink.attach ?capacity eng in
  let outcome = Mtj_pylite.Vm.run_source vm b.B.source in
  Sink.finalize sink;
  {
    o_eng = eng;
    o_sink = sink;
    o_baseline = baseline;
    o_jitlog = Mtj_pylite.Vm.jitlog vm;
    o_gc = Mtj_rt.Gc_sim.stats (Mtj_rt.Ctx.gc (Mtj_pylite.Vm.rtc vm));
    o_hstats = Mtj_rt.Ctx.hstats (Mtj_pylite.Vm.rtc vm);
    o_status =
      (match outcome with
      | Mtj_rjit.Driver.Completed _ -> "ok"
      | Mtj_rjit.Driver.Budget_exceeded -> "budget"
      | Mtj_rjit.Driver.Runtime_error e -> "failed: " ^ e);
  }

(* one shared jitting run, reused by several tests *)
let observed = lazy (run_observed ~budget:2_000_000 "binarytrees")

let parse_ok what s =
  match Json.parse s with
  | Ok j -> j
  | Error e -> Alcotest.failf "%s: %s" what e

let validated_trace o =
  let doc = Chrome_trace.export ~bench:"binarytrees" ~vm:"pylite" o.o_sink in
  let reparsed = parse_ok "trace json" (Json.to_string doc) in
  match Validate.trace reparsed with
  | Ok stats -> stats
  | Error e -> Alcotest.failf "trace validation: %s" e

(* --- chrome trace --- *)

let test_trace_roundtrip () =
  let o = Lazy.force observed in
  let stats = validated_trace o in
  Alcotest.(check bool) "has events" true (stats.Validate.events > 100);
  Alcotest.(check bool)
    "phases + jit-traces + gc tracks" true
    (stats.Validate.duration_tracks >= 3);
  Alcotest.(check bool)
    "at least two counter tracks" true
    (stats.Validate.counter_tracks >= 2);
  Alcotest.(check bool)
    "compile/abort/guard instants present" true
    (stats.Validate.instants > 0);
  Alcotest.(check int) "nothing dropped" 0 (Sink.dropped o.o_sink)

let test_phase_self_time_agrees () =
  let o = Lazy.force observed in
  let stats = validated_trace o in
  let counters = Engine.counters o.o_eng in
  let close a b =
    Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.max a b)
  in
  List.iter
    (fun p ->
      let name = Phase.name p in
      let base = List.assoc p o.o_baseline in
      let expected =
        (Counters.phase counters p).Counters.cycles -. base.Counters.cycles
      in
      let got =
        Option.value ~default:0.0
          (List.assoc_opt name stats.Validate.phase_self_cycles)
      in
      if not (close expected got) then
        Alcotest.failf "phase %s: span self-time %f <> counters %f" name got
          expected)
    Phase.all

let test_trace_has_jit_activity () =
  (* the span stream really carries the cross-layer story: binarytrees
     under the default config compiles traces and runs them *)
  let o = Lazy.force observed in
  let kinds = Hashtbl.create 8 in
  Sink.iter_events o.o_sink (fun e ->
      let k =
        match e.Sink.kind with
        | Sink.Phase_begin _ -> "phase_begin"
        | Sink.Phase_end _ -> "phase_end"
        | Sink.Trace_enter _ -> "trace_enter"
        | Sink.Trace_exit _ -> "trace_exit"
        | Sink.Guard_fail _ -> "guard_fail"
        | Sink.Trace_compile _ -> "trace_compile"
        | Sink.Trace_abort _ -> "trace_abort"
        | Sink.Marker _ -> "marker"
      in
      Hashtbl.replace kinds k (1 + Option.value ~default:0 (Hashtbl.find_opt kinds k)));
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " recorded") true (Hashtbl.mem kinds k))
    [ "phase_begin"; "phase_end"; "trace_enter"; "trace_exit"; "trace_compile" ]

let test_overflow_still_wellformed () =
  (* a tiny ring drops the tail of the stream; the exporter must still
     produce balanced, validating output *)
  let o = run_observed ~capacity:64 ~budget:1_000_000 "richards" in
  Alcotest.(check bool) "events were dropped" true (Sink.dropped o.o_sink > 0);
  let stats = validated_trace o in
  Alcotest.(check bool)
    "open spans were auto-closed" true
    (stats.Validate.auto_closed > 0)

(* --- metrics --- *)

let test_metrics_roundtrip () =
  let o = Lazy.force observed in
  let run =
    Metrics.run_json ~bench:"binarytrees" ~config:"pypy" ~status:o.o_status
      ~engine:o.o_eng ~jitlog:o.o_jitlog ~gc:o.o_gc
      ~ticks:(Sink.ticks o.o_sink) ~hstats:o.o_hstats ()
  in
  let doc = Metrics.document ~runs:[ run ] () in
  let reparsed = parse_ok "metrics json" (Json.to_string ~indent:2 doc) in
  (match Validate.metrics reparsed with
  | Ok n -> Alcotest.(check int) "one run record" 1 n
  | Error e -> Alcotest.failf "metrics validation: %s" e);
  (* v2 cache-effectiveness counters survive the round trip verbatim *)
  let jit =
    match
      Option.bind (Json.member "runs" reparsed) (fun runs ->
          match Json.get_arr runs with
          | Some (r :: _) -> Json.member "jit" r
          | _ -> None)
    with
    | Some j -> j
    | None -> Alcotest.fail "jit block missing from reparsed metrics"
  in
  let jint key =
    match Option.bind (Json.member key jit) Json.get_int with
    | Some v -> v
    | None -> Alcotest.failf "jit.%s missing" key
  in
  Alcotest.(check int)
    "translations round-trips" o.o_jitlog.Mtj_rjit.Jitlog.translations
    (jint "translations");
  Alcotest.(check int)
    "code_cache_hits round-trips" o.o_jitlog.Mtj_rjit.Jitlog.code_cache_hits
    (jint "code_cache_hits");
  Alcotest.(check bool)
    "a jitting run reuses cached code" true
    (jint "code_cache_hits" > 0);
  (* v4 threaded-interpreter counters survive the round trip verbatim *)
  Alcotest.(check int)
    "interp_translations round-trips"
    o.o_jitlog.Mtj_rjit.Jitlog.interp_translations
    (jint "interp_translations");
  Alcotest.(check int)
    "threaded_code_hits round-trips"
    o.o_jitlog.Mtj_rjit.Jitlog.threaded_code_hits
    (jint "threaded_code_hits");
  Alcotest.(check bool)
    "default config translates interpreter code" true
    (jint "interp_translations" > 0);
  Alcotest.(check bool)
    "code switches hit the threaded cache" true
    (jint "threaded_code_hits" > 0);
  (* v5 host fast-path counters survive the round trip verbatim *)
  let rint key =
    match
      Option.bind (Json.member "runs" reparsed) (fun runs ->
          match Json.get_arr runs with
          | Some (r :: _) -> Option.bind (Json.member key r) Json.get_int
          | _ -> None)
    with
    | Some v -> v
    | None -> Alcotest.failf "run.%s missing" key
  in
  Alcotest.(check int)
    "imm_fast_path_hits round-trips"
    o.o_hstats.Mtj_rt.Hstats.imm_fast_path_hits
    (rint "imm_fast_path_hits");
  Alcotest.(check int)
    "boxed_slow_path_hits round-trips"
    o.o_hstats.Mtj_rt.Hstats.boxed_slow_path_hits
    (rint "boxed_slow_path_hits");
  Alcotest.(check int)
    "typed_ops_total round-trips" o.o_hstats.Mtj_rt.Hstats.typed_ops_total
    (rint "typed_ops_total");
  Alcotest.(check int)
    "frame_pool_reuses round-trips"
    o.o_hstats.Mtj_rt.Hstats.frame_pool_reuses
    (rint "frame_pool_reuses");
  Alcotest.(check int)
    "dict_hash_skips round-trips" o.o_hstats.Mtj_rt.Hstats.dict_hash_skips
    (rint "dict_hash_skips");
  (* integer arithmetic dominates every bench, so the immediate fast
     path always fires, and the two buckets partition the total *)
  Alcotest.(check bool)
    "immediate fast path is live" true
    (rint "imm_fast_path_hits" > 0);
  Alcotest.(check int)
    "imm + boxed = typed total"
    (rint "typed_ops_total")
    (rint "imm_fast_path_hits" + rint "boxed_slow_path_hits")

let test_runner_metrics_roundtrip () =
  (* the memoized-result path used by `bench --metrics-out` *)
  let r = Mtj_harness.Runner.run ~budget:1_000_000 "nbody" Mtj_harness.Runner.Pypy_jit in
  let doc =
    Metrics.document ~runs:[ Mtj_harness.Report.metrics_json r ] ()
  in
  let reparsed = parse_ok "runner metrics json" (Json.to_string doc) in
  (match Validate.metrics reparsed with
  | Ok n -> Alcotest.(check int) "one run record" 1 n
  | Error e -> Alcotest.failf "runner metrics validation: %s" e);
  (* v3 charging fast-path stats survive the round trip verbatim *)
  let rint key =
    match
      Option.bind (Json.member "runs" reparsed) (fun runs ->
          match Json.get_arr runs with
          | Some (first :: _) -> Option.bind (Json.member key first) Json.get_int
          | _ -> None)
    with
    | Some v -> v
    | None -> Alcotest.failf "run.%s missing" key
  in
  Alcotest.(check int)
    "charge_flushes round-trips" r.Mtj_harness.Runner.charge_flushes
    (rint "charge_flushes");
  Alcotest.(check int)
    "fast_path_bundles round-trips" r.Mtj_harness.Runner.fast_path_bundles
    (rint "fast_path_bundles");
  Alcotest.(check bool)
    "bundles dominate flushes on a real run" true
    (rint "fast_path_bundles" > rint "charge_flushes" && rint "charge_flushes" > 0);
  (* v8 host fast-path counters flow through the memoized-result path *)
  Alcotest.(check int)
    "imm_fast_path_hits round-trips" r.Mtj_harness.Runner.imm_fast_path_hits
    (rint "imm_fast_path_hits");
  Alcotest.(check int)
    "boxed_slow_path_hits round-trips"
    r.Mtj_harness.Runner.boxed_slow_path_hits
    (rint "boxed_slow_path_hits");
  Alcotest.(check int)
    "typed_ops_total round-trips" r.Mtj_harness.Runner.typed_ops_total
    (rint "typed_ops_total");
  Alcotest.(check int)
    "frame_pool_reuses round-trips" r.Mtj_harness.Runner.frame_pool_reuses
    (rint "frame_pool_reuses");
  Alcotest.(check int)
    "dict_hash_skips round-trips" r.Mtj_harness.Runner.dict_hash_skips
    (rint "dict_hash_skips");
  Alcotest.(check bool)
    "immediate fast path is live" true
    (rint "imm_fast_path_hits" > 0);
  Alcotest.(check int)
    "imm + boxed = typed total"
    (rint "typed_ops_total")
    (rint "imm_fast_path_hits" + rint "boxed_slow_path_hits")

(* --- bench timings --- *)

let test_timings_roundtrip () =
  let runs =
    [
      {
        Mtj_harness.Runner.rt_bench = "nbody";
        rt_config = Mtj_harness.Runner.Pypy_jit;
        rt_wall_s = 0.25;
        rt_insns = 123_456;
        rt_cycles = 98_765.4;
        rt_minor_words = 1_024.0;
      };
    ]
  in
  let doc =
    Mtj_harness.Report.timings_json ~jobs:4 ~total_wall:1.5
      ~experiments:[ ("prefetch", 1.0); ("tab1", 0.5) ]
      ~runs
  in
  let reparsed = parse_ok "timings json" (Json.to_string ~indent:2 doc) in
  match Validate.timings reparsed with
  | Ok n -> Alcotest.(check int) "one run row" 1 n
  | Error e -> Alcotest.failf "timings validation: %s" e

(* --- json parser --- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.Str "a\"b\\c\nd\te");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("whole", Json.Float 3.0);
        ("nested", Json.Arr [ Json.Null; Json.Bool true; Json.Obj [] ]);
      ]
  in
  List.iter
    (fun indent ->
      match Json.parse (Json.to_string ?indent v) with
      | Ok v' -> Alcotest.(check bool) "round-trips" true (v = v')
      | Error e -> Alcotest.fail e)
    [ None; Some 2 ]

let test_json_errors () =
  let bad s =
    match Json.parse s with
    | Ok _ -> Alcotest.failf "parse accepted %S" s
    | Error _ -> ()
  in
  List.iter bad [ "{"; "[1,]"; "{\"a\" 1}"; "1 2"; "tru"; "\"unterminated"; "" ]

(* --- validator rejections --- *)

let test_validator_rejects_corruption () =
  let expect_err what = function
    | Ok _ -> Alcotest.failf "validator accepted %s" what
    | Error _ -> ()
  in
  (* wrong schema *)
  expect_err "wrong schema"
    (Validate.trace
       (Json.Obj [ ("schema", Json.Str "bogus/9"); ("traceEvents", Json.Arr []) ]));
  (* unbalanced E *)
  let ev ph name ts =
    Json.Obj
      [
        ("name", Json.Str name);
        ("cat", Json.Str "phase");
        ("ph", Json.Str ph);
        ("pid", Json.Int 1);
        ("tid", Json.Int 1);
        ("ts", Json.Float ts);
        ("args", Json.Obj []);
      ]
  in
  let doc events =
    Json.Obj
      [ ("schema", Json.Str "mtj-trace/1"); ("traceEvents", Json.Arr events) ]
  in
  expect_err "E without B" (Validate.trace (doc [ ev "E" "x" 1.0 ]));
  expect_err "unclosed B" (Validate.trace (doc [ ev "B" "x" 1.0 ]));
  expect_err "time going backwards"
    (Validate.trace
       (doc [ ev "B" "x" 2.0; ev "E" "x" 1.0 ]));
  expect_err "mismatched close"
    (Validate.trace
       (doc [ ev "B" "x" 1.0; ev "B" "y" 2.0; ev "E" "x" 3.0; ev "E" "y" 4.0 ]));
  (* metrics: per-phase sum disagreeing with the total *)
  let snap insns =
    Json.Obj
      [
        ("insns", Json.Int insns);
        ("cycles", Json.Float 10.0);
        ("branches", Json.Int 1);
        ("branch_misses", Json.Int 0);
        ("loads", Json.Int 1);
        ("stores", Json.Int 0);
        ("cache_misses", Json.Int 0);
        ("ipc", Json.Float 1.0);
        ("branch_mpki", Json.Float 0.0);
        ("branch_miss_rate", Json.Float 0.0);
        ("cache_miss_rate", Json.Float 0.0);
      ]
  in
  let mdoc ?(flushes = 3) ?(bundles = 5) ?(imm = Json.Int 2)
      ?(boxed = Json.Int 1) ?(typed = Json.Int 3) ?(pooled = Json.Null)
      ?(hash_skips = Json.Int 0) total =
    Json.Obj
      [
        ("schema", Json.Str "mtj-metrics/9");
        ( "runs",
          Json.Arr
            [
              Json.Obj
                [
                  ("bench", Json.Str "b");
                  ("config", Json.Str "c");
                  ("status", Json.Str "ok");
                  ("insns", Json.Int total);
                  ("cycles", Json.Float 10.0);
                  ("charge_flushes", Json.Int flushes);
                  ("fast_path_bundles", Json.Int bundles);
                  ("imm_fast_path_hits", imm);
                  ("boxed_slow_path_hits", boxed);
                  ("typed_ops_total", typed);
                  ("frame_pool_reuses", pooled);
                  ("dict_hash_skips", hash_skips);
                  ( "phases",
                    Json.Obj
                      [ ("interpreter", snap 7); ("total", snap total) ] );
                ];
            ] );
      ]
  in
  (match Validate.metrics (mdoc 7) with
  | Ok 1 -> ()
  | Ok n -> Alcotest.failf "expected 1 run, got %d" n
  | Error e -> Alcotest.failf "consistent metrics rejected: %s" e);
  expect_err "inconsistent phase sum" (Validate.metrics (mdoc 8));
  (* v3 charging fast-path invariants: the total snapshot carries a
     load, so a zero bundle count is impossible; and retired insns imply
     at least one staged-counter writeback *)
  expect_err "loads but no fast-path bundles"
    (Validate.metrics (mdoc ~bundles:0 7));
  expect_err "insns but no flushes" (Validate.metrics (mdoc ~flushes:0 7));
  expect_err "negative fast_path_bundles"
    (Validate.metrics (mdoc ~bundles:(-1) 7));
  (* v8 host fast-path counters: null is fine (native exporters), ints
     must be non-negative and bounded by the run's insn total, and the
     immediate/boxed split must partition the typed-op total *)
  (match
     Validate.metrics
       (mdoc ~imm:Json.Null ~boxed:Json.Null ~typed:Json.Null
          ~hash_skips:Json.Null 7)
   with
  | Ok 1 -> ()
  | Ok n -> Alcotest.failf "expected 1 run, got %d" n
  | Error e -> Alcotest.failf "null hstats counters rejected: %s" e);
  expect_err "negative imm_fast_path_hits"
    (Validate.metrics (mdoc ~imm:(Json.Int (-1)) 7));
  expect_err "imm + boxed <> typed_ops_total"
    (Validate.metrics (mdoc ~imm:(Json.Int 2) ~boxed:(Json.Int 2) 7));
  expect_err "frame_pool_reuses exceeding insns"
    (Validate.metrics (mdoc ~pooled:(Json.Int 8) 7));
  expect_err "non-int dict_hash_skips"
    (Validate.metrics (mdoc ~hash_skips:(Json.Str "many") 7));
  (* jit block violating the v2 cache invariants *)
  let jdoc ?(itrans = 1) ?(ihits = 0) ?(retiers = 0) ?(t1c = 0) ?(t2c = 1)
      ?(demotions = 0) ?(first_entry = 5) ?(res_t2_entries = 1)
      ?(tr_deopts = 0) ?(shared_hits = 0) ?total_hits ?(cache_hits = 0)
      ?(seeded_sites = 0) translations trace_translations =
    Json.Obj
      [
        ("schema", Json.Str "mtj-metrics/9");
        ( "runs",
          Json.Arr
            [
              Json.Obj
                [
                  ("bench", Json.Str "b");
                  ("config", Json.Str "c");
                  ("status", Json.Str "ok");
                  ("insns", Json.Int 7);
                  ("cycles", Json.Float 10.0);
                  ("charge_flushes", Json.Int 3);
                  ("fast_path_bundles", Json.Int 5);
                  ("imm_fast_path_hits", Json.Int 2);
                  ("boxed_slow_path_hits", Json.Int 0);
                  ("typed_ops_total", Json.Int 2);
                  ("frame_pool_reuses", Json.Int 0);
                  ("dict_hash_skips", Json.Null);
                  ( "phases",
                    Json.Obj [ ("interpreter", snap 7); ("total", snap 7) ] );
                  ( "jit",
                    Json.Obj
                      [
                        ("num_traces", Json.Int 1);
                        ("translations", Json.Int translations);
                        ("code_cache_hits", Json.Int cache_hits);
                        ("shared_code_hits", Json.Int shared_hits);
                        ( "code_cache_total_hits",
                          Json.Int
                            (Option.value total_hits
                               ~default:(cache_hits + shared_hits)) );
                        ("interp_translations", Json.Int itrans);
                        ("threaded_code_hits", Json.Int ihits);
                        ("retiers", Json.Int retiers);
                        ("tier1_compiles", Json.Int t1c);
                        ("tier2_compiles", Json.Int t2c);
                        ("demotions", Json.Int demotions);
                        ("first_entry_insns", Json.Int first_entry);
                        ("seeded_sites", Json.Int seeded_sites);
                        ( "tier_residency",
                          Json.Obj
                            [
                              ("tier1_entries", Json.Int 0);
                              ("tier2_entries", Json.Int res_t2_entries);
                              ("tier1_dynamic_ir", Json.Int 0);
                              ("tier2_dynamic_ir", Json.Int 4);
                            ] );
                        ( "traces",
                          Json.Arr
                            [
                              Json.Obj
                                [
                                  ("id", Json.Int 1);
                                  ("tier", Json.Int 2);
                                  ("entries", Json.Int 1);
                                  ("dynamic_ir", Json.Int 4);
                                  ("translations", Json.Int trace_translations);
                                  ("cache_hits", Json.Int 0);
                                  ("deopts", Json.Int tr_deopts);
                                  ("bridges", Json.Int 0);
                                ];
                            ] );
                      ] );
                ];
            ] );
      ]
  in
  (match Validate.metrics (jdoc 1 1) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "well-formed jit block rejected: %s" e);
  expect_err "translations < num_traces" (Validate.metrics (jdoc 0 1));
  expect_err "untranslated trace row" (Validate.metrics (jdoc 1 0));
  (* v4 threaded-interpreter invariants *)
  (match Validate.metrics (jdoc ~itrans:2 ~ihits:5 1 1) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "well-formed threaded counters rejected: %s" e);
  expect_err "threaded hits without translations"
    (Validate.metrics (jdoc ~itrans:0 ~ihits:5 1 1));
  expect_err "negative interp_translations"
    (Validate.metrics (jdoc ~itrans:(-1) 1 1));
  (* v6 multi-tier invariants *)
  expect_err "tier compiles don't sum to num_traces"
    (Validate.metrics (jdoc ~t1c:1 1 1));
  expect_err "promotions exceeding tier1 compiles"
    (Validate.metrics (jdoc ~retiers:1 1 1));
  expect_err "demotions exceeding tier2 compiles"
    (Validate.metrics (jdoc ~demotions:2 1 1));
  expect_err "first_entry_insns past end of run"
    (Validate.metrics (jdoc ~first_entry:99 1 1));
  expect_err "first_entry_insns below -1"
    (Validate.metrics (jdoc ~first_entry:(-2) 1 1));
  expect_err "tier_residency disagreeing with trace rows"
    (Validate.metrics (jdoc ~res_t2_entries:5 1 1));
  expect_err "negative per-trace deopts"
    (Validate.metrics (jdoc ~tr_deopts:(-1) 1 1));
  (* v7 shared-cache split invariants *)
  (match Validate.metrics (jdoc ~shared_hits:3 1 1) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "well-formed shared-hit counters rejected: %s" e);
  expect_err "negative shared_code_hits"
    (Validate.metrics (jdoc ~shared_hits:(-1) ~total_hits:0 1 1));
  expect_err "total hits <> local + shared"
    (Validate.metrics (jdoc ~shared_hits:2 ~total_hits:5 1 1));
  expect_err "trace-row cache_hits sum <> code_cache_hits"
    (Validate.metrics (jdoc ~cache_hits:1 1 1));
  (* v9 profile-seeding counter *)
  expect_err "negative seeded_sites"
    (Validate.metrics (jdoc ~seeded_sites:(-1) 1 1));
  (* v7 serve block, with the v9 bounded-cache/seeding extensions *)
  let sdoc ?(p95 = 2.0) ?(warm = 6) ?(cold = 4) ?(shared = true)
      ?(shared_hits = 6) ?(misses = 4) ?(pubs = 2) ?(profile_seed = true)
      ?(capacity = 0) ?(quota = 0) ?(entries = 2) ?(n_seeded = 1)
      ?(evictions = 0) ?(requeues = 0) ?(quota_rej = 0) ?(profile_pubs = 2)
      ?(seeded_imports = 1) () =
    Json.Obj
      [
        ("schema", Json.Str "mtj-metrics/9");
        ("runs", Json.Arr []);
        ( "serve",
          Json.Obj
            [
              ("requests", Json.Int 10);
              ("jobs", Json.Int 2);
              ("zipf_s", Json.Float 1.1);
              ("seed", Json.Int 42);
              ("shared_cache", Json.Bool shared);
              ("profile_seed", Json.Bool profile_seed);
              ("cache_capacity", Json.Int capacity);
              ("tenant_quota", Json.Int quota);
              ("corpus_size", Json.Int 6);
              ("cache_entries", Json.Int entries);
              ("budget", Json.Int 300_000);
              ("wall_s", Json.Float 0.5);
              ("throughput_rps", Json.Float 20.0);
              ( "latency_ms",
                Json.Obj
                  [
                    ("p50", Json.Float 1.0);
                    ("p95", Json.Float p95);
                    ("p99", Json.Float 3.0);
                  ] );
              ( "cold",
                Json.Obj
                  [ ("count", Json.Int cold); ("p50_ms", Json.Float 2.0) ] );
              ( "warm",
                Json.Obj
                  [ ("count", Json.Int warm); ("p50_ms", Json.Float 0.5) ] );
              ( "seeded",
                Json.Obj
                  [
                    ("count", Json.Int n_seeded);
                    ("first_entry_insns_mean", Json.Float 100.0);
                  ] );
              ("unseeded_first_entry_insns_mean", Json.Float 400.0);
              ( "shared_cache_stats",
                Json.Obj
                  [
                    ("shared_hits", Json.Int shared_hits);
                    ("local_hits", Json.Int 0);
                    ("misses", Json.Int misses);
                    ("publications", Json.Int pubs);
                    ("invalidations", Json.Int 0);
                    ("evictions", Json.Int evictions);
                    ("requeues", Json.Int requeues);
                    ("quota_rejections", Json.Int quota_rej);
                    ("profile_publications", Json.Int profile_pubs);
                    ("seeded_imports", Json.Int seeded_imports);
                    ("contention", Json.Int 0);
                  ] );
            ] );
      ]
  in
  (match Validate.metrics (sdoc ()) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "well-formed serve block rejected: %s" e);
  expect_err "unordered serve percentiles"
    (Validate.metrics (sdoc ~p95:9.0 ()));
  expect_err "warm + cold <> requests" (Validate.metrics (sdoc ~warm:7 ()));
  expect_err "lookups <> requests"
    (Validate.metrics (sdoc ~warm:5 ~cold:5 ~shared_hits:5 ~misses:4 ()));
  expect_err "hits <> warm count"
    (Validate.metrics (sdoc ~warm:5 ~cold:5 ~shared_hits:6 ~misses:4 ()));
  expect_err "publications exceeding misses"
    (Validate.metrics (sdoc ~pubs:5 ~profile_pubs:0 ()));
  expect_err "cache counters nonzero with cache off"
    (Validate.metrics
       (sdoc ~shared:false ~warm:0 ~cold:10 ~n_seeded:0 ~seeded_imports:0
          ~profile_pubs:0 ()));
  (* v9 bounded-cache / seeding invariants *)
  (match
     Validate.metrics
       (sdoc ~capacity:4 ~quota:1 ~entries:3 ~evictions:1 ~requeues:1
          ~quota_rej:1 ~pubs:2 ~misses:4 ())
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "well-formed bounded-cache block rejected: %s" e);
  expect_err "cache_entries past capacity"
    (Validate.metrics (sdoc ~capacity:2 ~entries:3 ()));
  expect_err "evictions exceeding publications"
    (Validate.metrics (sdoc ~capacity:4 ~evictions:3 ()));
  expect_err "eviction on an unbounded cache"
    (Validate.metrics (sdoc ~evictions:1 ()));
  expect_err "quota rejection with no quota"
    (Validate.metrics (sdoc ~quota_rej:1 ()));
  expect_err "quota rejections past the miss count"
    (Validate.metrics (sdoc ~quota:1 ~quota_rej:3 ()));
  expect_err "profile_publications exceeding publications"
    (Validate.metrics (sdoc ~profile_pubs:3 ()));
  expect_err "seeded_imports exceeding hits"
    (Validate.metrics (sdoc ~seeded_imports:7 ()));
  expect_err "seeded requests exceeding seeded_imports"
    (Validate.metrics (sdoc ~n_seeded:2 ~seeded_imports:1 ()));
  expect_err "seeding counters with profile_seed off"
    (Validate.metrics (sdoc ~profile_seed:false ()))

let suite =
  [
    Alcotest.test_case "trace round-trip + validate" `Quick
      test_trace_roundtrip;
    Alcotest.test_case "phase self-time = counters" `Quick
      test_phase_self_time_agrees;
    Alcotest.test_case "jit events in the stream" `Quick
      test_trace_has_jit_activity;
    Alcotest.test_case "ring overflow stays well-formed" `Quick
      test_overflow_still_wellformed;
    Alcotest.test_case "metrics round-trip + validate" `Quick
      test_metrics_roundtrip;
    Alcotest.test_case "runner metrics round-trip" `Quick
      test_runner_metrics_roundtrip;
    Alcotest.test_case "timings round-trip + validate" `Quick
      test_timings_roundtrip;
    Alcotest.test_case "json print/parse round-trip" `Quick
      test_json_roundtrip;
    Alcotest.test_case "json parse errors" `Quick test_json_errors;
    Alcotest.test_case "validator rejects corruption" `Quick
      test_validator_rejects_corruption;
  ]
