(** Unit + property tests for the bignum library: cross-checked against
    native int arithmetic in range, and against algebraic identities for
    values beyond the native range. *)

module B = Mtj_rt.Rbigint

let big = B.of_int
let b_test = Alcotest.testable B.pp B.equal

(* --- unit tests --- *)

let test_of_to_int () =
  List.iter
    (fun i -> Alcotest.(check (option int)) "roundtrip" (Some i) (B.to_int_opt (big i)))
    [ 0; 1; -1; 42; -42; max_int; min_int + 1; 1 lsl 40; -(1 lsl 40) ]

let test_min_int () =
  Alcotest.(check string) "min_int" (string_of_int min_int)
    (B.to_string (big min_int))

let test_add_basic () =
  Alcotest.check b_test "2+3" (big 5) (B.add (big 2) (big 3));
  Alcotest.check b_test "neg" (big (-1)) (B.add (big 2) (big (-3)));
  Alcotest.check b_test "zero" (big 7) (B.add (big 7) B.zero)

let test_carry_chain () =
  (* force multi-digit carries *)
  let nearly = B.sub (B.lshift B.one 120) B.one in
  Alcotest.check b_test "carry" (B.lshift B.one 120) (B.add nearly B.one)

let test_mul_signs () =
  Alcotest.check b_test "pos*neg" (big (-6)) (B.mul (big 2) (big (-3)));
  Alcotest.check b_test "neg*neg" (big 6) (B.mul (big (-2)) (big (-3)));
  Alcotest.check b_test "by zero" B.zero (B.mul (big 12345) B.zero)

let test_divmod_floor_semantics () =
  let check a b q r =
    let q', r' = B.divmod (big a) (big b) in
    Alcotest.check b_test (Printf.sprintf "%d//%d q" a b) (big q) q';
    Alcotest.check b_test (Printf.sprintf "%d%%%d r" a b) (big r) r'
  in
  check 7 2 3 1;
  check (-7) 2 (-4) 1;
  check 7 (-2) (-4) (-1);
  check (-7) (-2) 3 (-1)

let test_divmod_by_zero () =
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (B.divmod B.one B.zero))

let test_to_string_known () =
  Alcotest.(check string) "0" "0" (B.to_string B.zero);
  Alcotest.(check string) "2^100"
    "1267650600228229401496703205376"
    (B.to_string (B.lshift B.one 100));
  Alcotest.(check string) "neg" "-1267650600228229401496703205376"
    (B.to_string (B.neg (B.lshift B.one 100)))

let test_of_string () =
  Alcotest.check b_test "parse" (B.lshift B.one 100)
    (B.of_string "1267650600228229401496703205376");
  Alcotest.check b_test "neg" (big (-123)) (B.of_string "-123");
  Alcotest.check_raises "bad" (Invalid_argument "Rbigint.of_string")
    (fun () -> ignore (B.of_string "12x3"))

let test_shifts () =
  Alcotest.check b_test "1<<31" (big (1 lsl 31)) (B.lshift B.one 31);
  Alcotest.check b_test "asymmetric" (big 5) (B.rshift (big 0b101000) 3);
  (* floor semantics for negative values *)
  Alcotest.check b_test "neg rshift" (big (-3)) (B.rshift (big (-5)) 1)

let test_numbits () =
  Alcotest.(check int) "0" 0 (B.numbits B.zero);
  Alcotest.(check int) "1" 1 (B.numbits B.one);
  Alcotest.(check int) "255" 8 (B.numbits (big 255));
  Alcotest.(check int) "256" 9 (B.numbits (big 256));
  Alcotest.(check int) "2^100" 101 (B.numbits (B.lshift B.one 100))

let test_compare_total_order () =
  let xs = [ B.neg (B.lshift B.one 80); big (-5); B.zero; big 3; B.lshift B.one 80 ] in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          Alcotest.(check int)
            (Printf.sprintf "cmp %d %d" i j)
            (Int.compare i j)
            (B.compare a b))
        xs)
    xs

(* --- property tests --- *)

let in_range = QCheck.int_range (-1_000_000_000) 1_000_000_000

let prop_matches_native =
  QCheck.Test.make ~name:"bigint matches native int ops" ~count:2000
    (QCheck.pair in_range in_range) (fun (a, b) ->
      let ba = big a and bb = big b in
      B.to_int_opt (B.add ba bb) = Some (a + b)
      && B.to_int_opt (B.sub ba bb) = Some (a - b)
      && B.to_int_opt (B.mul ba bb) = Some (a * b)
      && B.compare ba bb = Int.compare a b)

let prop_divmod_invariant =
  QCheck.Test.make ~name:"divmod invariant a = q*b + r, |r| < |b|" ~count:2000
    (QCheck.pair in_range in_range) (fun (a, b) ->
      QCheck.assume (b <> 0);
      let ba = big a and bb = big b in
      let q, r = B.divmod ba bb in
      B.equal (B.add (B.mul q bb) r) ba
      && B.compare (B.abs r) (B.abs bb) < 0
      && (B.sign r = 0 || B.sign r = B.sign bb))

(* random big numbers from decimal strings *)
let big_gen =
  QCheck.Gen.(
    map2
      (fun digits neg ->
        let s =
          String.concat ""
            (List.mapi
               (fun i d -> string_of_int (if i = 0 then 1 + (d mod 9) else d mod 10))
               digits)
        in
        let v = B.of_string s in
        if neg then B.neg v else v)
      (list_size (int_range 1 50) (int_bound 9))
      bool)

let arbitrary_big = QCheck.make ~print:B.to_string big_gen

let prop_add_sub_roundtrip =
  QCheck.Test.make ~name:"(a+b)-b = a (large)" ~count:500
    (QCheck.pair arbitrary_big arbitrary_big) (fun (a, b) ->
      B.equal (B.sub (B.add a b) b) a)

let prop_mul_div_roundtrip =
  QCheck.Test.make ~name:"(a*b)/b = a (large)" ~count:500
    (QCheck.pair arbitrary_big arbitrary_big) (fun (a, b) ->
      QCheck.assume (B.sign b <> 0);
      let q, r = B.divmod (B.mul a b) b in
      B.equal q a && B.sign r = 0)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"to_string/of_string roundtrip" ~count:500
    arbitrary_big (fun a -> B.equal (B.of_string (B.to_string a)) a)

let prop_shift_roundtrip =
  QCheck.Test.make ~name:"(a<<n)>>n = a" ~count:500
    (QCheck.pair arbitrary_big (QCheck.int_range 0 200)) (fun (a, n) ->
      B.equal (B.rshift (B.lshift a n) n) a)

let prop_mul_commutes =
  QCheck.Test.make ~name:"a*b = b*a (large)" ~count:300
    (QCheck.pair arbitrary_big arbitrary_big) (fun (a, b) ->
      B.equal (B.mul a b) (B.mul b a))

let prop_divmod_large =
  QCheck.Test.make ~name:"divmod invariant (large)" ~count:500
    (QCheck.pair arbitrary_big arbitrary_big) (fun (a, b) ->
      QCheck.assume (B.sign b <> 0);
      let q, r = B.divmod a b in
      B.equal (B.add (B.mul q b) r) a && B.compare (B.abs r) (B.abs b) < 0)

let suite =
  [
    Alcotest.test_case "int roundtrip" `Quick test_of_to_int;
    Alcotest.test_case "min_int" `Quick test_min_int;
    Alcotest.test_case "add basic" `Quick test_add_basic;
    Alcotest.test_case "carry chain" `Quick test_carry_chain;
    Alcotest.test_case "mul signs" `Quick test_mul_signs;
    Alcotest.test_case "divmod floor semantics" `Quick test_divmod_floor_semantics;
    Alcotest.test_case "divmod by zero" `Quick test_divmod_by_zero;
    Alcotest.test_case "to_string known values" `Quick test_to_string_known;
    Alcotest.test_case "of_string" `Quick test_of_string;
    Alcotest.test_case "shifts" `Quick test_shifts;
    Alcotest.test_case "numbits" `Quick test_numbits;
    Alcotest.test_case "compare total order" `Quick test_compare_total_order;
    QCheck_alcotest.to_alcotest prop_matches_native;
    QCheck_alcotest.to_alcotest prop_divmod_invariant;
    QCheck_alcotest.to_alcotest prop_add_sub_roundtrip;
    QCheck_alcotest.to_alcotest prop_mul_div_roundtrip;
    QCheck_alcotest.to_alcotest prop_string_roundtrip;
    QCheck_alcotest.to_alcotest prop_shift_roundtrip;
    QCheck_alcotest.to_alcotest prop_mul_commutes;
    QCheck_alcotest.to_alcotest prop_divmod_large;
  ]
