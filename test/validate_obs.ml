(* Validate exported JSON artifacts (see test/OBS_SCHEMA.md).

   usage: validate_obs.exe (trace|metrics|timings) FILE

   Prints a one-line deterministic summary on success; prints the
   violation and exits 1 on failure.  CI runs this over the smoke-run
   artifacts; the cram suite runs it over files produced by `mtj trace`. *)

let die fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let () =
  let kind, file =
    match Sys.argv with
    | [| _; kind; file |] -> (kind, file)
    | _ -> die "usage: validate_obs.exe (trace|metrics|timings) FILE"
  in
  let contents =
    try In_channel.with_open_bin file In_channel.input_all
    with Sys_error e -> die "cannot read %s: %s" file e
  in
  let doc =
    match Mtj_obs.Json.parse contents with
    | Ok d -> d
    | Error e -> die "%s: %s" file e
  in
  match kind with
  | "trace" -> (
      match Mtj_obs.Validate.trace doc with
      | Error e -> die "%s: invalid trace: %s" file e
      | Ok s ->
          if s.Mtj_obs.Validate.duration_tracks < 3 then
            die "%s: only %d duration tracks (want phases, jit-traces, gc)"
              file s.Mtj_obs.Validate.duration_tracks;
          if s.Mtj_obs.Validate.counter_tracks < 2 then
            die "%s: only %d counter tracks" file
              s.Mtj_obs.Validate.counter_tracks;
          Printf.printf "trace OK: balanced spans on %d tracks, %d counter tracks\n"
            s.Mtj_obs.Validate.duration_tracks
            s.Mtj_obs.Validate.counter_tracks)
  | "metrics" -> (
      match Mtj_obs.Validate.metrics doc with
      | Error e -> die "%s: invalid metrics: %s" file e
      | Ok n -> Printf.printf "metrics OK: %d run record%s\n" n
                  (if n = 1 then "" else "s"))
  | "timings" -> (
      match Mtj_obs.Validate.timings doc with
      | Error e -> die "%s: invalid timings: %s" file e
      | Ok n -> Printf.printf "timings OK: %d run row%s\n" n
                  (if n = 1 then "" else "s"))
  | k -> die "unknown artifact kind %S" k
