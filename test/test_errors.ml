(** Error-path tests: runtime errors must be reported with the same
    message and the same output-so-far whether the program runs under the
    plain interpreter or an eagerly-JITting configuration (errors inside
    compiled traces deoptimize, re-execute in the interpreter and report
    from there). Also covers syntax/compile-time rejection. *)

module PV = Mtj_pylite.Vm
module KV = Mtj_rklite.Kvm
module C = Mtj_core.Config
module D = Mtj_rjit.Driver

let nojit = { C.no_jit with C.insn_budget = 20_000_000 }
let eager = { C.default with C.jit_threshold = 7; bridge_threshold = 3;
              insn_budget = 20_000_000 }

(* run pylite source, return (error message option, output) *)
let run_py config src =
  let outcome, vm = PV.run ~config src in
  let err =
    match outcome with
    | D.Runtime_error e -> Some e
    | D.Completed _ -> None
    | D.Budget_exceeded -> Some "<budget>"
  in
  (err, PV.output vm)

let run_rk config src =
  let outcome, vm = KV.run ~config src in
  let err =
    match outcome with
    | D.Runtime_error e -> Some e
    | D.Completed _ -> None
    | D.Budget_exceeded -> Some "<budget>"
  in
  (err, KV.output vm)

(* the error must fire, with identical message and prior output, in both
   execution modes *)
let check_py_error name ?(needle = "") src () =
  let ei, oi = run_py nojit src in
  let ej, oj = run_py eager src in
  (match ei with
  | None -> Alcotest.failf "%s: no error raised (output %S)" name oi
  | Some m ->
      if needle <> "" then begin
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool)
          (name ^ ": message mentions " ^ needle)
          true (contains m needle)
      end);
  Alcotest.(check (option string)) (name ^ ": same error under jit") ei ej;
  Alcotest.(check string) (name ^ ": same output before error") oi oj

let t name ?needle src = Alcotest.test_case name `Quick (check_py_error name ?needle src)

(* errors raised from inside hot loops: the loop compiles first, then the
   failing iteration deoptimizes and reports from the interpreter *)
let hot_loop_error body =
  Printf.sprintf
    "def f(i):\n    if i == 90:\n%s\n    return i\nacc = 0\nfor i in range(100):\n    acc = acc + f(i)\nprint(acc)\n"
    body

let py_cases =
  [
    t "undefined name" ~needle:"not defined" "print(nope)\n";
    t "type error add" ~needle:"unsupported" "x = 1 + \"s\"\n";
    t "division by zero" ~needle:"division" "x = 1 // 0\n";
    t "modulo by zero" ~needle:"division" "x = 7 % 0\n";
    t "index out of range" ~needle:"range" "xs = [1, 2]\nprint(xs[5])\n";
    t "negative index too far" ~needle:"range" "xs = [1]\nprint(xs[-4])\n";
    t "missing dict key" "d = {\"a\": 1}\nprint(d[\"b\"])\n";
    t "missing attribute" ~needle:"attribute"
      "class A:\n    def __init__(self):\n        self.x = 1\na = A()\nprint(a.y)\n";
    t "call non-function" "x = 5\nx(3)\n";
    t "wrong arity" "def f(a, b):\n    return a\nf(1)\n";
    t "string index out of range" "s = \"ab\"\nprint(s[10])\n";
    t "output before error is kept"
      "print(\"one\")\nprint(\"two\")\nboom(1)\n";
    t "error in hot loop (zero div)"
      (hot_loop_error "        return i // 0");
    t "error in hot loop (type)"
      (hot_loop_error "        return i + \"s\"");
    t "error in hot loop (index)"
      (hot_loop_error "        return [1][7]");
    t "error in hot method loop"
      "class A:\n\
      \    def __init__(self):\n\
      \        self.v = 0\n\
      \    def step(self, i):\n\
      \        if i == 95:\n\
      \            return self.missing\n\
      \        self.v = self.v + i\n\
      \        return 0\n\
       a = A()\n\
       for i in range(120):\n\
      \    a.step(i)\n\
       print(a.v)\n";
  ]

let check_py_syntax name src () =
  match PV.compile src with
  | exception Mtj_pylite.Parser.Syntax_error _ -> ()
  | exception Mtj_pylite.Compiler.Compile_error _ -> ()
  | _ -> Alcotest.failf "%s: bad program compiled" name

let s name src = Alcotest.test_case ("syntax: " ^ name) `Quick (check_py_syntax name src)

let py_syntax =
  [
    s "unterminated string" "x = \"abc\n";
    s "bad indent" "def f():\nreturn 1\n";
    s "dangling else" "else:\n    pass\n";
    s "unclosed paren" "x = (1 + 2\n";
    s "assignment to literal" "3 = x\n";
    s "break outside loop" "break\n";
  ]

(* --- rklite --- *)

let check_rk_error name src () =
  let ei, oi = run_rk nojit src in
  let ej, oj = run_rk eager src in
  (match ei with
  | None -> Alcotest.failf "%s: no error raised (output %S)" name oi
  | Some _ -> ());
  Alcotest.(check (option string)) (name ^ ": same error under jit") ei ej;
  Alcotest.(check string) (name ^ ": same output before error") oi oj

let k name src = Alcotest.test_case name `Quick (check_rk_error name src)

let rk_cases =
  [
    k "unbound variable" "(display nope)";
    k "car of non-pair" "(car 5)";
    k "apply non-procedure" "(5 1 2)";
    k "vector index out of range" "(vector-ref (make-vector 3 0) 9)";
    k "error in hot loop"
      "(define (loop i acc)\n\
      \  (if (= i 200) acc\n\
      \      (loop (+ i 1) (+ acc (if (= i 150) (car 0) 1)))))\n\
       (display (loop 0 0))";
  ]

let check_rk_syntax name src () =
  match KV.compile src with
  | exception Mtj_rklite.Reader.Syntax_error _ -> ()
  | exception Mtj_rklite.Kcompiler.Compile_error _ -> ()
  | _ -> Alcotest.failf "%s: bad program compiled" name

let ks name src = Alcotest.test_case ("syntax: " ^ name) `Quick (check_rk_syntax name src)

let rk_syntax =
  [
    ks "unclosed paren" "(define x (+ 1 2)";
    ks "stray close" ")";
    ks "unterminated string" "(display \"abc)";
    ks "bad define" "(define)";
    ks "bad lambda" "(lambda)";
  ]

(* --- fuzzing the frontends: random input must parse, or be rejected
   with the frontend's own syntax/compile error — never crash with an
   internal exception (Invalid_argument, Assert_failure, ...) --- *)

let py_tokens =
  [| "def"; "if"; "else"; "elif"; "for"; "while"; "return"; "print";
     "class"; "in"; "range"; "("; ")"; "["; "]"; "{"; "}"; ":"; ","; ".";
     "="; "=="; "+"; "-"; "*"; "//"; "%"; "<"; ">"; "x"; "y"; "foo"; "42";
     "3.5"; "\"s\""; "\n"; "\n    "; "\n        "; " " |]

let rk_tokens =
  [| "("; ")"; "define"; "lambda"; "let"; "if"; "cond"; "+"; "-"; "*";
     "car"; "cdr"; "cons"; "x"; "y"; "42"; "3.5"; "\"s\""; "'"; "#t";
     "#f"; " "; ";comment\n" |]

let fuzz_source rng tokens =
  let n = 1 + Random.State.int rng 60 in
  String.concat ""
    (List.init n (fun _ ->
         tokens.(Random.State.int rng (Array.length tokens))))

let prop_py_frontend_total =
  QCheck.Test.make ~name:"pylite frontend never crashes" ~count:500
    (QCheck.make QCheck.Gen.(int_range 1 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed; 41 |] in
      let src = fuzz_source rng py_tokens in
      match PV.compile src with
      | (_ : Mtj_pylite.Bytecode.code) -> true
      | exception Mtj_pylite.Parser.Syntax_error _ -> true
      | exception Mtj_pylite.Compiler.Compile_error _ -> true
      | exception e ->
          QCheck.Test.fail_reportf "source %S crashed: %s" src
            (Printexc.to_string e))

let prop_rk_frontend_total =
  QCheck.Test.make ~name:"rklite frontend never crashes" ~count:500
    (QCheck.make QCheck.Gen.(int_range 1 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed; 43 |] in
      let src = fuzz_source rng rk_tokens in
      match KV.compile src with
      | _ -> true
      | exception Mtj_rklite.Reader.Syntax_error _ -> true
      | exception Mtj_rklite.Kcompiler.Compile_error _ -> true
      | exception e ->
          QCheck.Test.fail_reportf "source %S crashed: %s" src
            (Printexc.to_string e))

(* raw byte soup, not just token soup *)
let prop_frontends_survive_bytes =
  QCheck.Test.make ~name:"frontends survive raw bytes" ~count:300
    (QCheck.make QCheck.Gen.(string_size (int_range 0 80)))
    (fun src ->
      let ok_py =
        match PV.compile src with
        | _ -> true
        | exception Mtj_pylite.Parser.Syntax_error _ -> true
        | exception Mtj_pylite.Compiler.Compile_error _ -> true
        | exception _ -> false
      in
      let ok_rk =
        match KV.compile src with
        | _ -> true
        | exception Mtj_rklite.Reader.Syntax_error _ -> true
        | exception Mtj_rklite.Kcompiler.Compile_error _ -> true
        | exception _ -> false
      in
      ok_py && ok_rk)

let suite =
  py_cases @ py_syntax @ rk_cases @ rk_syntax
  @ [
      QCheck_alcotest.to_alcotest prop_py_frontend_total;
      QCheck_alcotest.to_alcotest prop_rk_frontend_total;
      QCheck_alcotest.to_alcotest prop_frontends_survive_bytes;
    ]
