(** Differential testing of the JIT: randomly generated pylite programs
    must print exactly the same output under the plain interpreter, the
    full JIT, and the JIT with each optimizer pass disabled.  This is the
    main semantic-preservation property of the whole framework (trace
    recording, optimization, execution, deoptimization). *)

module V = Mtj_pylite.Vm
module C = Mtj_core.Config

(* --- a small random program generator --- *)

type rng = { mutable st : int }

let next r =
  (* xorshift, deterministic across runs *)
  let x = r.st in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  r.st <- x land max_int;
  r.st

let rand r n = if n <= 0 then 0 else next r mod n

let pick r l = List.nth l (rand r (List.length l))

let vars = [ "a"; "b"; "c"; "d" ]

(* arithmetic expression over int variables; division-free to avoid
   divide-by-zero control flow differences *)
let rec gen_expr r depth =
  if depth = 0 || rand r 3 = 0 then
    match rand r 3 with
    | 0 -> string_of_int (rand r 100)
    | 1 -> pick r vars
    | _ -> Printf.sprintf "(%s %% %d + %d)" (pick r vars) (2 + rand r 7) (rand r 5)
  else
    let op = pick r [ "+"; "-"; "*"; "&"; "|"; "^" ] in
    Printf.sprintf "(%s %s %s)" (gen_expr r (depth - 1)) op
      (gen_expr r (depth - 1))

let gen_cond r =
  Printf.sprintf "%s %s %s" (pick r vars)
    (pick r [ "<"; "<="; ">"; ">="; "=="; "!=" ])
    (gen_expr r 1)

let rec gen_stmt r indent depth =
  let pad = String.make indent ' ' in
  match rand r (if depth > 0 then 6 else 3) with
  | 0 -> Printf.sprintf "%s%s = %s\n" pad (pick r vars) (gen_expr r 2)
  | 1 -> Printf.sprintf "%s%s = %s + %s\n" pad (pick r vars) (pick r vars) (pick r vars)
  | 2 ->
      Printf.sprintf "%sacc = (acc + %s) %% 1000003\n" pad (gen_expr r 2)
  | 3 ->
      Printf.sprintf "%sif %s:\n%s%selse:\n%s" pad (gen_cond r)
        (gen_block r (indent + 4) (depth - 1))
        pad
        (gen_block r (indent + 4) (depth - 1))
  | 4 ->
      (* an inner counted loop *)
      Printf.sprintf "%sfor k in range(%d):\n%s" pad
        (1 + rand r 5)
        (gen_block r (indent + 4) (depth - 1))
  | _ ->
      Printf.sprintf "%sl[%d] = (l[%d] + %s) %% 256\n%sacc = acc + l[%d]\n"
        pad (rand r 8) (rand r 8) (pick r vars) pad (rand r 8)

and gen_block r indent depth =
  let n = 1 + rand r 3 in
  String.concat "" (List.init n (fun _ -> gen_stmt r indent depth))

let gen_program seed =
  let r = { st = (seed * 2654435761) lor 1 } in
  let body = gen_block r 8 2 in
  Printf.sprintf
    {|
def work(n):
    acc = 0
    a = 1
    b = 2
    c = 3
    d = 4
    l = [0, 1, 2, 3, 4, 5, 6, 7]
    for i in range(n):
        a = (a + i) %% 97
        b = (b + a) %% 89
%s        acc = (acc + a + b + c + d) %% 1000003
    return acc

print(work(120))
print(work(35))
|}
    body

(* --- run one source under many configurations --- *)

let budget = 80_000_000

let configs =
  [
    ("interp", { C.no_jit with C.insn_budget = budget });
    ( "jit",
      { C.default with C.jit_threshold = 9; bridge_threshold = 3;
        insn_budget = budget } );
    ( "jit-noopt",
      { C.default with C.jit_threshold = 9; bridge_threshold = 3;
        insn_budget = budget; opt_fold = false; opt_guard_elim = false;
        opt_forward = false; opt_virtuals = false; opt_peel = false } );
    ( "jit-nopeel",
      { C.default with C.jit_threshold = 9; bridge_threshold = 3;
        insn_budget = budget; opt_peel = false } );
    ( "jit-novirtuals",
      { C.default with C.jit_threshold = 9; bridge_threshold = 3;
        insn_budget = budget; opt_virtuals = false } );
    ( "jit-2tier",
      (* tiny tier-2 threshold so recompiles actually fire in small tests *)
      { C.default with C.jit_threshold = 9; bridge_threshold = 3;
        insn_budget = budget; tier_policy = C.Adaptive; tier2_threshold = 5 } );
  ]

let run_one config src =
  let outcome, vm = V.run ~config src in
  match outcome with
  | Mtj_rjit.Driver.Completed _ -> V.output vm
  | Mtj_rjit.Driver.Budget_exceeded -> "<budget>"
  | Mtj_rjit.Driver.Runtime_error e -> "<error: " ^ e ^ ">"

let check_seed seed () =
  let src = gen_program seed in
  let results = List.map (fun (name, c) -> (name, run_one c src)) configs in
  let _, reference = List.hd results in
  List.iter
    (fun (name, out) ->
      if out <> reference then
        Alcotest.failf "seed %d: %s diverged\nprogram:\n%s\n%s=%S\ninterp=%S"
          seed name src name out reference)
    results

let prop_random_programs =
  QCheck.Test.make ~name:"random programs: interp = jit = ablated jits"
    ~count:25
    (QCheck.make QCheck.Gen.(int_range 1 100000))
    (fun seed ->
      let src = gen_program seed in
      let results = List.map (fun (_, c) -> run_one c src) configs in
      List.for_all (fun o -> o = List.hd results) results)

let suite =
  List.init 12 (fun i ->
      Alcotest.test_case
        (Printf.sprintf "generated program %d" i)
        `Quick
        (check_seed (1000 + (i * 7919))))
  @ [ QCheck_alcotest.to_alcotest prop_random_programs ]
