(** Property-based tests for the machine models.

    Random access/branch streams drive the data-cache, the branch
    predictor and the engine counters, checking the invariants every
    downstream table relies on: conservation (hits + misses = accesses,
    per-phase counters sum to the totals), monotonicity under more work,
    rates staying inside [0, 1], and the predictor actually learning a
    fully-biased branch stream. *)

module M = Mtj_machine
module Counters = M.Counters
module Phase = Mtj_core.Phase

let seeded_rng seed = Random.State.make [| seed; 0x6d74 |]

(* --- dcache --- *)

let prop_dcache_conservation =
  QCheck.Test.make ~count:100 ~name:"dcache: hits + misses = accesses"
    QCheck.(pair small_int (list small_int))
    (fun (seed, addrs) ->
      let rng = seeded_rng seed in
      let c = M.Dcache.create () in
      let n = ref 0 in
      List.iter
        (fun a ->
          (* mix a few hot lines with cold sweeps *)
          let addr =
            if Random.State.bool rng then a land 0xff
            else (a * 6151) + Random.State.int rng 1_000_000
          in
          ignore (M.Dcache.access c ~addr);
          incr n)
        addrs;
      let hits = M.Dcache.hits c and misses = M.Dcache.misses c in
      let rate =
        if !n = 0 then 0.0 else float_of_int hits /. float_of_int !n
      in
      hits >= 0 && misses >= 0
      && hits + misses = !n
      && rate >= 0.0 && rate <= 1.0)

let prop_dcache_rehit =
  QCheck.Test.make ~count:100 ~name:"dcache: immediate re-access hits"
    QCheck.(list small_int)
    (fun addrs ->
      let c = M.Dcache.create () in
      List.for_all
        (fun a ->
          ignore (M.Dcache.access c ~addr:a);
          M.Dcache.access c ~addr:a)
        addrs)

(* --- predictor --- *)

let prop_predictor_biased =
  QCheck.Test.make ~count:50
    ~name:"predictor: fully-biased stream mispredicts <1%"
    QCheck.(pair small_int bool)
    (fun (site, taken) ->
      let p = M.Predictor.create () in
      let n = 10_000 in
      let miss = ref 0 in
      for _ = 1 to n do
        if not (M.Predictor.conditional p ~site ~taken) then incr miss
      done;
      (* warmup only: the 2-bit counters and the global history settle
         within a few tens of branches *)
      !miss * 100 < n)

let prop_predictor_btb_stable =
  QCheck.Test.make ~count:50
    ~name:"predictor: monomorphic indirect target locks in"
    QCheck.(pair small_int small_int)
    (fun (site, target) ->
      let p = M.Predictor.create () in
      (* warm up: the BTB index mixes in global history, which converges
         to a fixed point under a constant target stream *)
      for _ = 1 to 100 do
        ignore (M.Predictor.indirect p ~site ~target)
      done;
      let ok = ref true in
      for _ = 1 to 100 do
        if not (M.Predictor.indirect p ~site ~target) then ok := false
      done;
      !ok)

(* --- engine counters --- *)

type work = Emit of int | Branch of bool | Mem of int * bool

let work_gen =
  QCheck.Gen.(
    list_size (int_range 0 300)
      (oneof
         [
           map (fun n -> Emit (1 + (n mod 7))) small_nat;
           map (fun b -> Branch b) bool;
           map2 (fun a w -> Mem (a, w)) small_nat bool;
         ]))

let arb_work =
  QCheck.make work_gen
    ~print:(fun ws -> Printf.sprintf "<%d work items>" (List.length ws))

let apply_work eng w =
  match w with
  | Emit n -> M.Engine.emit eng (Mtj_core.Cost.make ~alu:n ())
  | Branch taken -> M.Engine.branch eng ~site:3 ~taken
  | Mem (addr, write) -> M.Engine.mem_access eng ~addr ~write

let prop_counters_conserved =
  QCheck.Test.make ~count:100
    ~name:"engine: totals = sum of charges, phases sum to total" arb_work
    (fun ws ->
      let eng = M.Engine.create () in
      (* spread the work over two phases so the per-phase sum is
         non-trivial *)
      let i = ref 0 in
      let expected_insns = ref 0 in
      let expected_branches = ref 0 in
      let expected_mem = ref 0 in
      List.iter
        (fun w ->
          incr i;
          (match w with
          | Emit n -> expected_insns := !expected_insns + n
          | Branch _ ->
              incr expected_branches;
              incr expected_insns
          | Mem _ ->
              incr expected_mem;
              incr expected_insns);
          if !i mod 2 = 0 then
            M.Engine.in_phase eng Phase.Jit (fun () -> apply_work eng w)
          else apply_work eng w)
        ws;
      let t = Counters.total (M.Engine.counters eng) in
      let sum f =
        List.fold_left
          (fun acc p -> acc + f (Counters.phase (M.Engine.counters eng) p))
          0 Phase.all
      in
      t.Counters.insns = !expected_insns
      && t.Counters.insns = M.Engine.total_insns eng
      && t.Counters.branches = !expected_branches
      && t.Counters.branch_misses <= t.Counters.branches
      && t.Counters.loads + t.Counters.stores = !expected_mem
      && sum (fun s -> s.Counters.insns) = t.Counters.insns
      && sum (fun s -> s.Counters.branches) = t.Counters.branches
      && sum (fun s -> s.Counters.cache_misses) = t.Counters.cache_misses
      && Counters.ipc t >= 0.0
      && Counters.branch_miss_rate t >= 0.0
      && Counters.branch_miss_rate t <= 1.0)

let prop_counters_monotone =
  QCheck.Test.make ~count:100
    ~name:"engine: every counter is monotone under more work" arb_work
    (fun ws ->
      let eng = M.Engine.create () in
      let prev = ref (Counters.total (M.Engine.counters eng)) in
      List.for_all
        (fun w ->
          apply_work eng w;
          let c = Counters.total (M.Engine.counters eng) in
          let ok =
            c.Counters.insns >= !prev.Counters.insns
            && c.Counters.cycles >= !prev.Counters.cycles
            && c.Counters.branches >= !prev.Counters.branches
            && c.Counters.branch_misses >= !prev.Counters.branch_misses
            && c.Counters.loads >= !prev.Counters.loads
            && c.Counters.stores >= !prev.Counters.stores
            && c.Counters.cache_misses >= !prev.Counters.cache_misses
            && M.Engine.total_cycles eng >= 0.0
          in
          prev := c;
          ok)
        ws)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_dcache_conservation;
      prop_dcache_rehit;
      prop_predictor_biased;
      prop_predictor_btb_stable;
      prop_counters_conserved;
      prop_counters_monotone;
    ]
