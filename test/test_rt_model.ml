(** Model-based property tests for the runtime substrates.

    Each test drives a substrate (ordered dict, list strategies, set
    strategies, string functions) with a long random operation sequence
    and checks every observable result against a trivially-correct OCaml
    reference model. These catch exactly the bug class hash tables and
    strategy switches breed: probe-sequence errors after deletions,
    resize-time entry loss, order violations, and strategy-transition
    corruption. *)

open Mtj_rt
module V = Value

let ctx () = Ctx.create ()

let vint i = V.of_int i
let vstr s = V.of_str s

(* keys drawn from a small pool so collisions, updates and
   delete-then-reinsert happen often *)
let key rng =
  if Random.State.bool rng then vint (Random.State.int rng 25)
  else vstr (String.make 1 (Char.chr (97 + Random.State.int rng 12)))

(* --- ordered dict vs insertion-ordered association list --- *)

let dict_model_run seed =
  let rng = Random.State.make [| seed |] in
  let c = ctx () in
  let d = Rdict.create c in
  let o = Gc_sim.alloc (Ctx.gc c) (V.Dict d) in
  (* model: (key, value) list in insertion order *)
  let model = ref [] in
  let model_set k v =
    if List.exists (fun (k', _) -> V.py_eq k k') !model then
      model := List.map (fun (k', v') -> if V.py_eq k k' then (k', v) else (k', v')) !model
    else model := !model @ [ (k, v) ]
  in
  let model_del k =
    let had = List.exists (fun (k', _) -> V.py_eq k k') !model in
    model := List.filter (fun (k', _) -> not (V.py_eq k k')) !model;
    had
  in
  let model_get k =
    List.find_map (fun (k', v) -> if V.py_eq k k' then Some v else None) !model
  in
  let steps = 400 in
  let ok = ref true in
  for step = 1 to steps do
    (match Random.State.int rng 10 with
    | 0 | 1 | 2 | 3 ->
        let k = key rng and v = vint step in
        Rdict.set c o d k v;
        model_set k v
    | 4 | 5 ->
        let k = key rng in
        let was = Rdict.delete c d k in
        let mwas = model_del k in
        if was <> mwas then ok := false
    | 6 | 7 ->
        let k = key rng in
        if Rdict.get c d k <> model_get k then ok := false
    | 8 ->
        let k = key rng in
        if Rdict.contains c d k <> (model_get k <> None) then ok := false
    | _ ->
        (* full order check *)
        let keys = Rdict.keys d in
        let mkeys = List.map fst !model in
        if not (List.length keys = List.length mkeys
                && List.for_all2 V.py_eq keys mkeys) then ok := false);
    if Rdict.length d <> List.length !model then ok := false
  done;
  (* final sweep: every model entry retrievable, iteration in order *)
  List.iter
    (fun (k, v) ->
      match Rdict.get c d k with
      | Some v' when V.py_eq v v' -> ()
      | _ -> ok := false)
    !model;
  let n = ref 0 in
  Rdict.iter d (fun k v ->
      (match List.nth_opt !model !n with
      | Some (mk, mv) -> if not (V.py_eq k mk && V.py_eq v mv) then ok := false
      | None -> ok := false);
      incr n);
  !ok && !n = List.length !model

let prop_dict =
  QCheck.Test.make ~name:"ordered dict matches assoc-list model" ~count:60
    (QCheck.make QCheck.Gen.(int_range 1 1_000_000))
    dict_model_run

(* --- list strategies vs a dynamic array model --- *)

let list_model_run seed =
  let rng = Random.State.make [| seed; 7 |] in
  let c = ctx () in
  let lo = Rlist.create c [] in
  let model = ref [||] in
  let ok = ref true in
  (* random element: mostly ints (IntegerListStrategy), sometimes strings
     or floats to force ObjectListStrategy transitions *)
  let elt () =
    match Random.State.int rng 8 with
    | 0 -> vstr (String.make 1 (Char.chr (97 + Random.State.int rng 26)))
    | 1 -> V.of_float (float_of_int (Random.State.int rng 100) /. 4.0)
    | _ -> vint (Random.State.int rng 1000 - 500)
  in
  for _ = 1 to 300 do
    let n = Array.length !model in
    match Random.State.int rng 10 with
    | 0 | 1 | 2 ->
        let v = elt () in
        Rlist.append c lo v;
        model := Array.append !model [| v |]
    | 3 when n > 0 ->
        let i = Random.State.int rng n in
        let v = elt () in
        Rlist.set c lo i v;
        !model.(i) <- v
    | 4 when n > 0 ->
        let i = Random.State.int rng n in
        let v = Rlist.pop c lo i in
        if not (V.py_eq v !model.(i)) then ok := false;
        model :=
          Array.append (Array.sub !model 0 i)
            (Array.sub !model (i + 1) (n - i - 1))
    | 5 when n > 1 ->
        let i = Random.State.int rng n in
        let j = i + Random.State.int rng (n - i) in
        let s = Rlist.slice c lo i j in
        let msub = Array.sub !model i (j - i) in
        let got = Rlist.to_array (Rlist.of_obj s) in
        if not (Array.length got = Array.length msub
                && Array.for_all2 V.py_eq got msub) then ok := false
    | 6 when n > 0 ->
        let v = !model.(Random.State.int rng n) in
        let i = Rlist.find c lo v in
        (* first occurrence in the model *)
        let mi = ref (-1) in
        Array.iteri (fun k x -> if !mi < 0 && V.py_eq x v then mi := k) !model;
        if i <> !mi then ok := false
    | 7 ->
        let v = vint 999_999 in
        if Rlist.find c lo v <> -1 then ok := false
    | 8 when n > 0 ->
        let i = Random.State.int rng n in
        if not (V.py_eq (Rlist.get c lo i) !model.(i)) then ok := false
    | _ ->
        let other = Rlist.create c (Array.to_list !model) in
        let cat = Rlist.concat c lo other in
        let got = Rlist.to_array (Rlist.of_obj cat) in
        let want = Array.append !model !model in
        if not (Array.length got = Array.length want
                && Array.for_all2 V.py_eq got want) then ok := false
  done;
  let got = Rlist.to_array (Rlist.of_obj lo) in
  !ok
  && Array.length got = Array.length !model
  && Array.for_all2 V.py_eq got !model

let prop_list =
  QCheck.Test.make ~name:"list strategies match array model" ~count:60
    (QCheck.make QCheck.Gen.(int_range 1 1_000_000))
    list_model_run

(* strategy transitions: an int list degrades to object strategy when a
   non-int lands in it, and reports int strategy while homogeneous *)
let test_list_strategy_transition () =
  let c = ctx () in
  let lo = Rlist.create c [ vint 1; vint 2 ] in
  let l = Rlist.of_obj lo in
  Alcotest.(check string) "starts integer" "int" (Rlist.strategy_name l);
  Rlist.append c lo (vstr "x");
  Alcotest.(check string) "degrades to object" "object" (Rlist.strategy_name l);
  (* contents preserved across the transition *)
  Alcotest.(check bool) "contents survive" true
    (V.py_eq (Rlist.get c lo 0) (vint 1)
    && V.py_eq (Rlist.get c lo 2) (vstr "x"))

(* --- sets vs a sorted-list model --- *)

let set_model_run seed =
  let rng = Random.State.make [| seed; 13 |] in
  let c = ctx () in
  let mk vals = Rset.create c vals in
  let pool = Array.init 20 (fun i -> vint i) in
  let rand_elems () =
    List.filter (fun _ -> Random.State.bool rng) (Array.to_list pool)
  in
  let module IS = Set.Make (Int) in
  let to_is vals =
    IS.of_list
      (List.map
         (fun v ->
           if V.is_int v then V.to_int_unchecked v else assert false)
         vals)
  in
  let of_set o = to_is (Rset.elements (Rset.of_obj o)) in
  let ok = ref true in
  for _ = 1 to 60 do
    let a = rand_elems () and b = rand_elems () in
    let sa = mk a and sb = mk b in
    let ma = to_is a and mb = to_is b in
    if not (IS.equal (of_set (Rset.difference c sa sb)) (IS.diff ma mb)) then
      ok := false;
    if not (IS.equal (of_set (Rset.union c sa sb)) (IS.union ma mb)) then
      ok := false;
    if not (IS.equal (of_set (Rset.intersection c sa sb)) (IS.inter ma mb))
    then ok := false;
    if Rset.issubset c sa sb <> IS.subset ma mb then ok := false;
    (* add/remove round trip *)
    let x = pool.(Random.State.int rng 20) in
    Rset.add c sa x;
    if not (Rset.contains c (Rset.of_obj sa) x) then ok := false;
    let removed = Rset.remove c sa x in
    if not removed then ok := false;
    if Rset.contains c (Rset.of_obj sa) x then ok := false
  done;
  !ok

let prop_set =
  QCheck.Test.make ~name:"set strategies match Set model" ~count:40
    (QCheck.make QCheck.Gen.(int_range 1 1_000_000))
    set_model_run

(* --- strings vs stdlib --- *)

let gen_word rng =
  String.init (Random.State.int rng 12) (fun _ ->
      Char.chr (97 + Random.State.int rng 6))

let str_model_run seed =
  let rng = Random.State.make [| seed; 29 |] in
  let c = ctx () in
  let ok = ref true in
  for _ = 1 to 80 do
    let s = gen_word rng in
    (* join/split round trip (no empty-part ambiguity when parts are
       nonempty and separator absent from them) *)
    let parts =
      List.init (1 + Random.State.int rng 5) (fun _ -> "w" ^ gen_word rng)
    in
    let joined = Rstr.join c "," parts in
    if String.concat "," parts <> joined then ok := false;
    if Rstr.split c joined ',' <> parts then ok := false;
    (* find_char agrees with String.index_from *)
    let ch = Char.chr (97 + Random.State.int rng 6) in
    let start = if s = "" then 0 else Random.State.int rng (String.length s) in
    let want =
      match String.index_from_opt s start ch with Some i -> i | None -> -1
    in
    if Rstr.find_char c s ch ~start <> want then ok := false;
    (* replace agrees with a naive reference *)
    let pat = "ab" and rep = gen_word rng in
    let naive =
      let b = Buffer.create 16 in
      let i = ref 0 in
      let n = String.length s in
      while !i < n do
        if !i + 2 <= n && String.sub s !i 2 = pat then begin
          Buffer.add_string b rep;
          i := !i + 2
        end
        else begin
          Buffer.add_char b s.[!i];
          incr i
        end
      done;
      Buffer.contents b
    in
    if Rstr.replace c s pat rep <> naive then ok := false;
    (* int2dec / string_to_int round trip *)
    let v = Random.State.int rng 2_000_001 - 1_000_000 in
    if Rstr.int2dec c v <> string_of_int v then ok := false;
    if Rstr.string_to_int c (string_of_int v) <> Some v then ok := false;
    if Rstr.string_to_int c (s ^ "x9") <> None then ok := false;
    (* builder accumulates in order *)
    let b = Rstr.builder_new c in
    List.iter (fun p -> Rstr.builder_append c b p) parts;
    if Rstr.builder_build c b <> String.concat "" parts then ok := false
  done;
  !ok

let prop_str =
  QCheck.Test.make ~name:"string functions match stdlib" ~count:60
    (QCheck.make QCheck.Gen.(int_range 1 1_000_000))
    str_model_run

(* --- GC: random object graphs survive forced collections --- *)

let gc_model_run seed =
  let rng = Random.State.make [| seed; 31 |] in
  let cfg = { Mtj_core.Config.default with Mtj_core.Config.nursery_words = 512 } in
  let c = Ctx.create ~config:cfg () in
  let gc = Ctx.gc c in
  (* roots: a register file the GC scans *)
  let roots = Array.make 8 V.nil in
  let scanner = Gc_sim.add_root_scanner gc (fun visit -> Array.iter visit roots) in
  Fun.protect ~finally:(fun () -> Gc_sim.remove_root_scanner gc scanner)
  @@ fun () ->
  (* build random tuples-of-tuples reachable from roots, tracked by a
     parallel pure model; lots of garbage allocated in between *)
  let model = Array.make 8 [] in
  for _ = 1 to 300 do
    let slot = Random.State.int rng 8 in
    match Random.State.int rng 4 with
    | 0 ->
        (* new chain cell: (payload_int, previous_root) *)
        let p = Random.State.int rng 1000 in
        let v = Gc_sim.obj gc (V.Tuple [| vint p; roots.(slot) |]) in
        roots.(slot) <- v;
        model.(slot) <- p :: model.(slot)
    | 1 ->
        (* garbage *)
        ignore (Gc_sim.obj gc (V.Tuple [| vint 0; vint 1; vint 2 |]))
    | 2 ->
        roots.(slot) <- V.nil;
        model.(slot) <- []
    | _ ->
        if Random.State.bool rng then Gc_sim.collect_minor gc
        else Gc_sim.collect_major gc
  done;
  Gc_sim.collect_minor gc;
  Gc_sim.collect_major gc;
  (* verify every chain matches its model *)
  let ok = ref true in
  Array.iteri
    (fun i expected ->
      let rec walk v = function
        | [] -> if not (V.is_nil v) then ok := false
        | p :: rest -> (
            match V.view v with
            | V.Obj { V.payload = V.Tuple [| pv; next |]; _ } ->
                if not (V.is_int pv) || V.to_int_unchecked pv <> p then
                  ok := false
                else walk next rest
            | _ -> ok := false)
      in
      walk roots.(i) expected)
    model;
  !ok

let prop_gc =
  QCheck.Test.make ~name:"object graphs survive collection" ~count:40
    (QCheck.make QCheck.Gen.(int_range 1 1_000_000))
    gc_model_run

let suite =
  [
    QCheck_alcotest.to_alcotest prop_dict;
    QCheck_alcotest.to_alcotest prop_list;
    Alcotest.test_case "list strategy transition" `Quick
      test_list_strategy_transition;
    QCheck_alcotest.to_alcotest prop_set;
    QCheck_alcotest.to_alcotest prop_str;
    QCheck_alcotest.to_alcotest prop_gc;
  ]
