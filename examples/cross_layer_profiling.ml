(* Cross-layer profiling walkthrough (the paper's Sec. IV methodology):
   annotate events at the application level, intercept them — together
   with the framework's own annotations — at the instruction-stream
   level, and measure warmup with the interpreter-level work counter.

   The program is rklite (Scheme); the instrumentation is identical for
   every hosted language because it lives below the VM.

     dune exec examples/cross_layer_profiling.exe *)

let app =
  {|
;; phase 1: build a table (annotate 1)
(annotate 1)
(define table (make-vector 400 0))
(let fill ((i 0))
  (when (< i 400)
    (vector-set! table i (modulo (* i 2654435761) 100003))
    (fill (+ i 1))))

;; phase 2: hot numeric loop over the table (annotate 2)
(annotate 2)
(define (score n)
  (let loop ((i 0) (s 0))
    (if (< i n)
        (loop (+ i 1)
              (modulo (+ s (* (vector-ref table (modulo i 400)) 31)) 99991))
        s)))
(display (score 120000)) (newline)

;; phase 3: string building (annotate 3)
(annotate 3)
(define (dashes n)
  (let loop ((i 0) (acc ""))
    (if (< i n) (loop (+ i 1) (string-append acc "-")) acc)))
(display (string-length (dashes 400))) (newline)
|}

let () =
  let config = Mtj_core.Config.with_budget 150_000_000 Mtj_core.Config.default in
  let vm = Mtj_rklite.Kvm.create ~config () in
  let engine = Mtj_rklite.Kvm.engine vm in
  (* application-level markers, intercepted at the instruction stream *)
  let markers = ref [] in
  Mtj_machine.Engine.add_listener engine (fun ~insns a ->
      match a with
      | Mtj_core.Annot.App_marker n -> markers := (n, insns) :: !markers
      | _ -> ());
  let tracker = Mtj_pintool.Phase_tracker.attach ~bucket_insns:100_000 engine in
  let sampler = Mtj_pintool.Rate_sampler.attach ~window:100_000 engine in
  (match Mtj_rklite.Kvm.run_source vm app with
  | Mtj_rjit.Driver.Completed _ -> ()
  | _ -> failwith "run failed");
  Mtj_pintool.Phase_tracker.finalize tracker;
  Mtj_pintool.Rate_sampler.finalize sampler;
  print_string (Mtj_rklite.Kvm.output vm);
  print_endline "\napplication markers seen in the instruction stream:";
  List.iter
    (fun (n, insns) ->
      Printf.printf "  marker %d at instruction %d\n" n insns)
    (List.rev !markers);
  print_endline "\nphase timeline (dominant phase per 100k instructions):";
  let letters =
    Array.map
      (fun bucket ->
        let p, _ =
          Array.fold_left
            (fun (bp, bf) (p, f) -> if f > bf then (p, f) else (bp, bf))
            (Mtj_core.Phase.Interpreter, 0.0) bucket
        in
        match p with
        | Mtj_core.Phase.Interpreter -> 'I'
        | Tracing -> 'T'
        | Jit -> 'J'
        | Jit_call -> 'C'
        | Gc_minor | Gc_major -> 'G'
        | Blackhole -> 'B'
        | Native -> 'N')
      (Mtj_pintool.Phase_tracker.timeline tracker)
  in
  Printf.printf "  %s\n" (String.init (Array.length letters) (Array.get letters));
  print_endline "\ncumulative work (dispatch ticks) at each 100k instructions:";
  Array.iter
    (fun (insns, ticks) ->
      if insns mod 500_000 = 0 then
        Printf.printf "  %8d insns -> %8d bytecodes\n" insns ticks)
    (Mtj_pintool.Rate_sampler.samples sampler);
  Printf.printf "\ntotal work: %d dispatch ticks over %d instructions\n"
    (Mtj_pintool.Rate_sampler.ticks sampler)
    (Mtj_machine.Engine.total_insns engine)
