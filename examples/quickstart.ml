(* Quickstart: run a Python-subset program on the meta-tracing JIT VM and
   see what the JIT did.

     dune exec examples/quickstart.exe *)

let program =
  {|
def mandel_row(y, width):
    count = 0
    ci = 2.0 * y / 40.0 - 1.0
    for x in range(width):
        cr = 2.0 * x / width - 1.5
        zr = 0.0
        zi = 0.0
        bounded = True
        for i in range(40):
            zr2 = zr * zr
            zi2 = zi * zi
            if zr2 + zi2 > 4.0:
                bounded = False
                break
            zi = 2.0 * zr * zi + ci
            zr = zr2 - zi2 + cr
        if bounded:
            count = count + 1
    return count

total = 0
for y in range(40):
    total = total + mandel_row(y, 40)
print(total)
|}

let run jit =
  let config =
    Mtj_core.Config.with_budget 400_000_000
      (if jit then Mtj_core.Config.default else Mtj_core.Config.no_jit)
  in
  let vm = Mtj_pylite.Vm.create ~config () in
  let tracker = Mtj_pintool.Phase_tracker.attach (Mtj_pylite.Vm.engine vm) in
  (match Mtj_pylite.Vm.run_source vm program with
  | Mtj_rjit.Driver.Completed _ -> ()
  | Mtj_rjit.Driver.Budget_exceeded -> failwith "ran out of budget"
  | Mtj_rjit.Driver.Runtime_error e -> failwith e);
  Mtj_pintool.Phase_tracker.finalize tracker;
  (vm, tracker)

let () =
  print_endline "Running a pylite program on the meta-tracing JIT VM...\n";
  let vm_interp, _ = run false in
  let vm_jit, tracker = run true in
  let cycles vm =
    Mtj_machine.Engine.total_cycles (Mtj_pylite.Vm.engine vm)
  in
  Printf.printf "program output (both VMs agree): %s"
    (Mtj_pylite.Vm.output vm_jit);
  assert (Mtj_pylite.Vm.output vm_jit = Mtj_pylite.Vm.output vm_interp);
  Printf.printf "\ninterpreter: %11.0f simulated cycles\n" (cycles vm_interp);
  Printf.printf "with JIT:    %11.0f simulated cycles  (%.1fx faster)\n"
    (cycles vm_jit)
    (cycles vm_interp /. cycles vm_jit);
  print_endline "\nwhere the JIT run spent its time:";
  List.iter
    (fun p ->
      let f = Mtj_pintool.Phase_tracker.fraction tracker p in
      if f > 0.001 then
        Printf.printf "  %-12s %5.1f%%\n" (Mtj_core.Phase.name p) (100. *. f))
    Mtj_core.Phase.all;
  let jl = Mtj_pylite.Vm.jitlog vm_jit in
  Printf.printf "\ncompiled %d traces (%d bridges), %d deoptimizations\n"
    (Mtj_rjit.Jitlog.num_traces jl)
    jl.Mtj_rjit.Jitlog.bridges_attached jl.Mtj_rjit.Jitlog.deopts
