(* The meta-JIT pitch, demonstrated: define a brand-new toy language in
   ~100 lines — just its bytecode and a one-instruction step function —
   and the framework gives it a tracing JIT, guards, deoptimization and
   cross-layer profiling for free.  No JIT-specific code below: the
   interpreter is written against the OPS seam and the generic driver
   does the rest (the RPython value proposition from the paper's intro).

     dune exec examples/build_a_language.exe *)

open Mtj_rjit

(* --- the "Acc" language: a tiny register machine --- *)

type instr =
  | Push of int          (* push a constant *)
  | Load of int          (* push register r *)
  | Store of int         (* pop into register r *)
  | Add | Sub | Mul | Mod
  | Less                 (* pop b, a; push a < b *)
  | Jmpf of int          (* pop; jump if false *)
  | Jmp of int
  | Print                (* pop and print *)
  | Halt

module Acc_lang = struct
  type code = instr array * int

  let registry : (int, code) Hashtbl.t = Hashtbl.create 8
  let next = ref 0

  let register instrs =
    let id = !next in
    incr next;
    let c = (instrs, id) in
    Hashtbl.replace registry id c;
    c

  let code_ref (_, id) = id
  let lookup_code id = Hashtbl.find registry id
  let nlocals _ = 8          (* eight registers *)
  let stack_size _ = 16
  let name (_, id) = Printf.sprintf "acc-%d" id

  (* loop headers: targets of backward jumps *)
  let loop_header (instrs, _) pc =
    let is_target = ref false in
    Array.iteri
      (fun src i ->
        match i with
        | Jmp t | Jmpf t -> if t = pc && t <= src then is_target := true
        | _ -> ())
      instrs;
    !is_target

  let opcode_at (instrs, _) pc =
    match instrs.(pc) with
    | Push _ -> 0 | Load _ -> 1 | Store _ -> 2 | Add -> 3 | Sub -> 4
    | Mul -> 5 | Mod -> 6 | Less -> 7 | Jmpf _ -> 8 | Jmp _ -> 9
    | Print -> 10 | Halt -> 11

  module Step (O : Ops_intf.OPS) = struct
    let step cx _globals (f : (O.t, code) Frame.t) =
      let instrs, _ = f.Frame.code in
      let pc = f.Frame.pc in
      let next () = f.Frame.pc <- pc + 1; Frame.Continue in
      match instrs.(pc) with
      | Push k ->
          Frame.push f (O.const cx (Mtj_rt.Value.of_int k));
          next ()
      | Load r ->
          Frame.push f f.Frame.locals.(r);
          next ()
      | Store r ->
          f.Frame.locals.(r) <- Frame.pop f;
          next ()
      | Add -> let b = Frame.pop f in let a = Frame.pop f in
          Frame.push f (O.add cx a b); next ()
      | Sub -> let b = Frame.pop f in let a = Frame.pop f in
          Frame.push f (O.sub cx a b); next ()
      | Mul -> let b = Frame.pop f in let a = Frame.pop f in
          Frame.push f (O.mul cx a b); next ()
      | Mod -> let b = Frame.pop f in let a = Frame.pop f in
          Frame.push f (O.modulo cx a b); next ()
      | Less -> let b = Frame.pop f in let a = Frame.pop f in
          Frame.push f (O.compare cx Ops_intf.Lt a b); next ()
      | Jmpf t ->
          let v = Frame.pop f in
          if O.is_true cx v then next () else (f.Frame.pc <- t; Frame.Continue)
      | Jmp t -> f.Frame.pc <- t; Frame.Continue
      | Print ->
          ignore (O.call_builtin cx Builtin.Print [| Frame.pop f |]);
          next ()
      | Halt -> Frame.Return (O.const cx Mtj_rt.Value.nil)

    let step_ref = step
  end

  (* the threaded-dispatch tier, generic flavour: a language that wants
     it for free wraps its reference step in one pre-bound closure per
     pc (pylite/rklite go further and pre-decode operands per pc) *)
  module D_ref = Step (Direct_ops)

  let headers ((instrs, _) as c) =
    Array.init (Array.length instrs) (loop_header c)

  let threaded_tbl : (int, (Direct_ops.t, code) Threaded.step array) Hashtbl.t =
    Hashtbl.create 8

  let lookup_threaded c = Hashtbl.find_opt threaded_tbl (code_ref c)
  let store_threaded c s = Hashtbl.replace threaded_tbl (code_ref c) s

  let threaded_code dcx globals d ((instrs, _) as c) =
    Array.init (Array.length instrs) (fun pc ->
        let target = opcode_at c pc in
        fun f ->
          Threaded.charge d ~target;
          D_ref.step_ref dcx globals f)
end

module Acc_vm = Driver.Make (Acc_lang)

(* --- an Acc program: sum of i*i mod 9973 for i < 200000 --- *)

let program =
  Acc_lang.register
    [|
      (* r0 = i, r1 = acc *)
      Push 0; Store 0;                            (* 0-1 *)
      Push 0; Store 1;                            (* 2-3 *)
      (* 4: loop header *)
      Load 0; Push 60000; Less; Jmpf 21;         (* 4-7 *)
      Load 0; Load 0; Mul;                        (* 8-10 *)
      Load 1; Add; Push 9973; Mod; Store 1;       (* 11-15 *)
      Load 0; Push 1; Add; Store 0;               (* 16-19 *)
      Jmp 4;                                      (* 20 *)
      (* 21: epilogue: print acc and its negation *)
      Load 1; Print;                              (* 21-22 *)
      Push 0; Load 1; Sub; Print;                 (* 23-26 *)
      Halt;                                       (* 27 *)
    |]

let run jit =
  (* cached threaded steps bind a run's engine; drop them between runs *)
  Hashtbl.reset Acc_lang.threaded_tbl;
  let config =
    Mtj_core.Config.with_budget 100_000_000
      (if jit then Mtj_core.Config.default else Mtj_core.Config.no_jit)
  in
  let rtc = Mtj_rt.Ctx.create ~config () in
  let globals = Globals.create () in
  let vm = Acc_vm.create ~profile:Mtj_core.Profile.rpython_interp rtc globals in
  (match Acc_vm.run vm program with
  | Driver.Completed _ -> ()
  | Driver.Budget_exceeded -> failwith "budget"
  | Driver.Runtime_error e -> failwith e);
  let out = Buffer.contents (Mtj_rt.Ctx.out rtc) in
  (out, Mtj_machine.Engine.total_cycles (Mtj_rt.Ctx.engine rtc),
   Acc_vm.jitlog vm)

let () =
  print_endline "A new language defined in ~100 lines, JIT included:\n";
  let out_i, cycles_i, _ = run false in
  let out_j, cycles_j, jl = run true in
  assert (out_i = out_j);
  Printf.printf "program result: %s" out_j;
  Printf.printf "\ninterpreted: %.0f cycles\n" cycles_i;
  Printf.printf "with JIT:    %.0f cycles   (%.1fx faster)\n" cycles_j
    (cycles_i /. cycles_j);
  Printf.printf
    "\nthe framework compiled %d trace(s) for the Acc language
(with guards, an optimizer, deoptimization and peeling) —
none of which the language implementer had to write.\n"
    (Jitlog.num_traces jl);
  List.iter
    (fun (tr : Ir.trace) ->
      Printf.printf "  trace %d: %d IR ops, executed %d times\n" tr.Ir.trace_id
        (Array.length tr.Ir.ops) tr.Ir.exec_count)
    (Jitlog.traces jl)
