(* Warmup tuning: how the JIT's compilation policy knobs move the
   warmup/steady-state trade-off on a single workload.

   The paper's Sec. VI asks (Q2/Q5) how long a meta-tracing JIT takes to
   pay for itself and whether a multi-tier design would help. This
   example sweeps the two policy knobs the framework exposes —
   [jit_threshold] (how hot a loop must be before tracing) and
   [Config.two_tier] (compile quick first, well later) — and reports,
   for each setting, total time, time spent tracing/compiling, and the
   break-even point against the plain interpreter.

     dune exec examples/warmup_tuning.exe *)

module Config = Mtj_core.Config
module Phase = Mtj_core.Phase
module Vm = Mtj_pylite.Vm
module Engine = Mtj_machine.Engine

(* a mid-sized workload: enough loop nests to keep the tracer busy, short
   enough that warmup is a visible fraction of the run *)
let program =
  {|
def smooth(xs):
    out = []
    n = len(xs)
    for i in range(n):
        lo = i - 2
        hi = i + 3
        if lo < 0:
            lo = 0
        if hi > n:
            hi = n
        s = 0
        for j in range(lo, hi):
            s = s + xs[j]
        out.append(s // (hi - lo))
    return out

xs = []
seed = 7
for i in range(300):
    seed = (seed * 1103515245 + 12345) % 65536
    xs.append(seed % 1000)
for round in range(40):
    xs = smooth(xs)
total = 0
for v in xs:
    total = total + v
print(total)
|}

type run = {
  label : string;
  cycles : float;
  compile_insns : int;
  traces : int;
  retiers : int;
  samples : (int * int) array;
  output : string;
}

let run_with label config =
  let vm = Vm.create ~config () in
  let eng = Vm.engine vm in
  let tracker = Mtj_pintool.Phase_tracker.attach eng in
  let sampler = Mtj_pintool.Rate_sampler.attach eng in
  (match Vm.run_source vm program with
  | Mtj_rjit.Driver.Completed _ -> ()
  | Mtj_rjit.Driver.Budget_exceeded -> failwith "ran out of budget"
  | Mtj_rjit.Driver.Runtime_error e -> failwith e);
  Mtj_pintool.Phase_tracker.finalize tracker;
  Mtj_pintool.Rate_sampler.finalize sampler;
  let jl = Vm.jitlog vm in
  {
    label;
    cycles = Engine.total_cycles eng;
    compile_insns = Mtj_pintool.Phase_tracker.phase_insns tracker Phase.Tracing;
    traces = Mtj_rjit.Jitlog.num_traces jl;
    retiers = jl.Mtj_rjit.Jitlog.retiers;
    samples = Mtj_pintool.Rate_sampler.samples sampler;
    output = Vm.output vm;
  }

(* first instruction count where this run's cumulative work (dispatch
   ticks) overtakes the interpreter's at the same instruction count *)
let break_even jit interp =
  let ticks_at (r : run) insns =
    let s = r.samples in
    let n = Array.length s in
    let rec find i =
      if i >= n then if n = 0 then 0 else snd s.(n - 1)
      else if fst s.(i) >= insns then snd s.(i)
      else find (i + 1)
    in
    find 0
  in
  let rec scan x =
    if x > 30_000_000 then None
    else if ticks_at jit x >= ticks_at interp x && ticks_at jit x > 0 then
      Some x
    else scan (x + 100_000)
  in
  scan 100_000

let () =
  let budget = Config.with_budget 400_000_000 in
  let interp = run_with "interpreter" (budget Config.no_jit) in
  let variants =
    [
      ("threshold 37", budget { Config.default with Config.jit_threshold = 37 });
      ("threshold 131 (default)", budget Config.default);
      ("threshold 523", budget { Config.default with Config.jit_threshold = 523 });
      ("two-tier", budget Config.two_tier);
    ]
  in
  let runs = List.map (fun (l, c) -> run_with l c) variants in
  List.iter (fun r -> assert (r.output = interp.output)) runs;
  print_endline "Warmup tuning on a 300-element smoothing kernel (40 rounds)\n";
  Printf.printf "%-24s  %11s  %8s  %7s  %7s  %11s  %10s\n" "policy"
    "Mcycles" "vs interp" "traces" "retiers" "compile Mi" "break-even";
  Printf.printf "%s\n" (String.make 89 '-');
  Printf.printf "%-24s  %11.2f  %8s  %7s  %7s  %11s  %10s\n" interp.label
    (interp.cycles /. 1e6) "1.00x" "-" "-" "-" "-";
  List.iter
    (fun r ->
      let be =
        match break_even r interp with
        | Some x -> Printf.sprintf "%.1f Mi" (float_of_int x /. 1e6)
        | None -> "never"
      in
      Printf.printf "%-24s  %11.2f  %7.2fx  %7d  %7d  %11.2f  %10s\n" r.label
        (r.cycles /. 1e6)
        (interp.cycles /. r.cycles)
        r.traces r.retiers
        (float_of_int r.compile_insns /. 1e6)
        be)
    runs;
  print_endline
    "\nLower thresholds trace more loops, including ones that are not yet\n\
     stable, so they can pay MORE compile time and break even later;\n\
     higher thresholds interpret longer but compile only what stays hot.\n\
     Two-tier compiles cheaply first and recompiles hot loops (the\n\
     retiers column) through the full optimizer."
