(* A realistic server-side scenario — the workload class that motivates
   the paper's django/spitfire benchmarks: render HTML from templates,
   heavy on dictionary lookups and string building.

   Demonstrates framework-level characterization: which AOT-compiled
   runtime functions the JIT-compiled traces call, and how much of the
   run they consume (the paper's Table III methodology).

     dune exec examples/template_engine.exe *)

let app =
  {|
def render_page(title, rows, cols):
    out = StringIO()
    out.write("<html><head><title>")
    out.write(encode_json(title))
    out.write("</title></head><body><table>")
    for r in range(rows):
        ctx = {}
        for c in range(cols):
            ctx["cell" + str(c)] = "r" + str(r) + "c" + str(c)
        out.write("<tr>")
        for c in range(cols):
            out.write("<td>")
            out.write(ctx.get("cell" + str(c), "?"))
            out.write("</td>")
        out.write("</tr>")
    out.write("</table></body></html>")
    return out.getvalue()

total = 0
for page in range(60):
    html = render_page("Report \"Q" + str(page % 4) + "\"", 40, 6)
    total = total + len(html)
print(total)
|}

let () =
  let config = Mtj_core.Config.with_budget 150_000_000 Mtj_core.Config.default in
  let vm = Mtj_pylite.Vm.create ~config () in
  let engine = Mtj_pylite.Vm.engine vm in
  let tracker = Mtj_pintool.Phase_tracker.attach engine in
  let attrib = Mtj_pintool.Aot_attrib.attach engine in
  (match Mtj_pylite.Vm.run_source vm app with
  | Mtj_rjit.Driver.Completed _ -> ()
  | _ -> failwith "run failed");
  Mtj_pintool.Phase_tracker.finalize tracker;
  Printf.printf "rendered: %s" (Mtj_pylite.Vm.output vm);
  let total = Mtj_machine.Engine.total_insns engine in
  Printf.printf "\ntotal: %d simulated instructions\n\nphases:\n" total;
  List.iter
    (fun p ->
      let f = Mtj_pintool.Phase_tracker.fraction tracker p in
      if f > 0.001 then
        Printf.printf "  %-12s %5.1f%%\n" (Mtj_core.Phase.name p) (100. *. f))
    Mtj_core.Phase.all;
  print_endline
    "\nAOT-compiled functions called from JIT-compiled traces\n\
     (template rendering is dominated by dict probes and string building,\n\
     exactly the paper's django/spitfire observation):";
  List.iter
    (fun (id, insns) ->
      match Mtj_rt.Aot.find id with
      | Some fn ->
          Printf.printf "  %5.1f%%  [%s] %s\n"
            (100.0 *. float_of_int insns /. float_of_int total)
            (Mtj_rt.Aot.src_letter (Mtj_rt.Aot.src fn))
            (Mtj_rt.Aot.name fn)
      | None -> ())
    (Mtj_pintool.Aot_attrib.top attrib ~n:8)
